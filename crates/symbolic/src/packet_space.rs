//! The symbolic packet space for ACL analysis: the classic 5-tuple.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

use campion_bdd::{AnyManager, Assignment, Bdd, SharedPool};
use campion_ir::AclRuleIr;
use campion_net::{Flow, IpProtocol, PortRange, Prefix, WildcardMask};

use crate::bits;

/// Canonical identity of an ACL rule's *match condition* — every field that
/// feeds [`PacketSpace::rule_bdd`], and nothing else (label, span and
/// permit/deny don't shape the BDD). Near-identical configs repeat match
/// conditions almost verbatim across the two sides of a pair, so keying the
/// rule cache on this content hash makes the second side's encoding (and
/// duplicated rules within one ACL) a lookup instead of a rebuild.
///
/// Public because the semantic layer aligns rule lists *syntactically* by
/// this same canonical content (plus action) before building any BDDs —
/// two rules with equal keys denote equal match sets by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RuleKey {
    protocols: Vec<IpProtocol>,
    src: Vec<WildcardMask>,
    dst: Vec<WildcardMask>,
    src_ports: Vec<PortRange>,
    dst_ports: Vec<PortRange>,
}

impl RuleKey {
    /// The canonical match content of `rule`.
    pub fn of(rule: &AclRuleIr) -> Self {
        RuleKey {
            protocols: rule.protocols.clone(),
            src: rule.src.clone(),
            dst: rule.dst.clone(),
            src_ports: rule.src_ports.clone(),
            dst_ports: rule.dst_ports.clone(),
        }
    }
}

/// Variables of the destination address (first so destination-prefix
/// localization mirrors the route space's layout).
pub const DST_VARS: std::ops::Range<u32> = 0..32;
/// Variables of the source address.
pub const SRC_VARS: std::ops::Range<u32> = 32..64;
/// Variables of the IP protocol byte.
pub const PROTO_VARS: std::ops::Range<u32> = 64..72;
/// Variables of the source port.
pub const SPORT_VARS: std::ops::Range<u32> = 72..88;
/// Variables of the destination port.
pub const DPORT_VARS: std::ops::Range<u32> = 88..104;

/// Total variable count of the packet space.
pub const NUM_VARS: u32 = 104;

/// Variable layout and encoding operations for data-plane packets.
///
/// `Clone` snapshots the space (manager arena included, with node indices
/// preserved) so independent localization queries can run on per-thread
/// copies and be dropped afterwards.
#[derive(Clone)]
pub struct PacketSpace {
    /// The BDD manager (exposed so callers can run set operations).
    pub manager: AnyManager,
    /// Memoized rule-condition BDDs keyed by canonical match content.
    /// Entries are GC-rooted at insert: the cache is consulted for the
    /// space's whole lifetime, so they must survive any collection between
    /// rules.
    rule_cache: HashMap<RuleKey, Bdd>,
    rule_cache_lookups: u64,
    rule_cache_hits: u64,
}

impl Default for PacketSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketSpace {
    /// Create the space on a private single-threaded manager.
    pub fn new() -> Self {
        PacketSpace {
            manager: AnyManager::new_private(NUM_VARS),
            rule_cache: HashMap::new(),
            rule_cache_lookups: 0,
            rule_cache_hits: 0,
        }
    }

    /// Create the space on a worker of `pool`'s shared arena when given,
    /// else privately (same as [`PacketSpace::new`]).
    pub fn new_in(pool: Option<&SharedPool>) -> Self {
        match pool {
            Some(p) => PacketSpace {
                manager: AnyManager::from(p.worker(NUM_VARS)),
                rule_cache: HashMap::new(),
                rule_cache_lookups: 0,
                rule_cache_hits: 0,
            },
            None => Self::new(),
        }
    }

    /// Every packet (the packet universe is unconstrained).
    pub fn universe(&self) -> Bdd {
        Bdd::TRUE
    }

    /// Rule-cache counters `(lookups, hits)` — one lookup per
    /// [`PacketSpace::rule_bdd`] call. The driver folds these into the
    /// report's [`campion_bdd::ManagerStats`].
    pub fn rule_cache_stats(&self) -> (u64, u64) {
        (self.rule_cache_lookups, self.rule_cache_hits)
    }

    /// Fold rule-cache counter deltas from forked clones back into this
    /// space, keeping `--stats` invariant under intra-pair fan-out.
    pub fn add_rule_cache_counts(&mut self, lookups: u64, hits: u64) {
        self.rule_cache_lookups += lookups;
        self.rule_cache_hits += hits;
    }

    /// Encode one ACL rule's match condition. Memoized on the rule's
    /// canonical match content, so both ACLs of a pair (which share this
    /// space and typically share almost all rules) encode each distinct
    /// condition once.
    pub fn rule_bdd(&mut self, rule: &AclRuleIr) -> Bdd {
        let key = RuleKey::of(rule);
        self.rule_cache_lookups += 1;
        if let Some(&b) = self.rule_cache.get(&key) {
            self.rule_cache_hits += 1;
            return b;
        }
        let b = self.rule_bdd_uncached(rule);
        self.manager.protect(b);
        self.rule_cache.insert(key, b);
        b
    }

    fn rule_bdd_uncached(&mut self, rule: &AclRuleIr) -> Bdd {
        let mut acc = Bdd::TRUE;

        // Protocol alternatives.
        if !rule.protocols.is_empty() {
            let proto_vars: Vec<u32> = PROTO_VARS.collect();
            let mut any = Bdd::FALSE;
            for p in &rule.protocols {
                let b = match p.number() {
                    Some(n) => bits::eq_const(&mut self.manager, &proto_vars, u64::from(n)),
                    None => Bdd::TRUE,
                };
                any = self.manager.or(any, b);
            }
            acc = self.manager.and(acc, any);
        }

        // Addresses.
        for (vars, alts) in [(SRC_VARS, &rule.src), (DST_VARS, &rule.dst)] {
            if !alts.is_empty() {
                let v: Vec<u32> = vars.collect();
                let mut any = Bdd::FALSE;
                for w in alts {
                    let b = bits::wildcard_const(&mut self.manager, &v, w.addr, w.wildcard);
                    any = self.manager.or(any, b);
                }
                acc = self.manager.and(acc, any);
            }
        }

        // Ports only exist for TCP/UDP; a port-qualified rule cannot match
        // other protocols.
        let portful = {
            let proto_vars: Vec<u32> = PROTO_VARS.collect();
            let tcp = bits::eq_const(&mut self.manager, &proto_vars, 6);
            let udp = bits::eq_const(&mut self.manager, &proto_vars, 17);
            self.manager.or(tcp, udp)
        };
        for (vars, alts) in [(SPORT_VARS, &rule.src_ports), (DPORT_VARS, &rule.dst_ports)] {
            if !alts.is_empty() {
                let v: Vec<u32> = vars.collect();
                let mut any = Bdd::FALSE;
                for r in alts {
                    let b =
                        bits::range_const(&mut self.manager, &v, u64::from(r.lo), u64::from(r.hi));
                    any = self.manager.or(any, b);
                }
                let gated = self.manager.and(portful, any);
                acc = self.manager.and(acc, gated);
            }
        }
        acc
    }

    /// The set of packets whose destination lies in a prefix range's
    /// addresses (for destination-prefix localization of ACL diffs, the
    /// length dimension collapses to address containment of the covering
    /// prefix).
    pub fn dst_prefix_bdd(&mut self, p: &Prefix) -> Bdd {
        let v: Vec<u32> = DST_VARS.collect();
        bits::prefix_const(&mut self.manager, &v, p.bits(), p.len())
    }

    /// Same for source addresses.
    pub fn src_prefix_bdd(&mut self, p: &Prefix) -> Bdd {
        let v: Vec<u32> = SRC_VARS.collect();
        bits::prefix_const(&mut self.manager, &v, p.bits(), p.len())
    }

    /// Project a predicate onto the destination-address dimensions.
    pub fn project_to_dst(&mut self, f: Bdd) -> Bdd {
        let vars: Vec<u32> = (DST_VARS.end..NUM_VARS).collect();
        self.manager.exists(f, &vars)
    }

    /// Project a predicate onto the source-address dimensions.
    pub fn project_to_src(&mut self, f: Bdd) -> Bdd {
        let mut vars: Vec<u32> = DST_VARS.collect();
        vars.extend(SRC_VARS.end..NUM_VARS);
        self.manager.exists(f, &vars)
    }

    /// Decode a satisfying assignment into a concrete flow plus display
    /// metadata.
    pub fn concretize(&self, a: &Assignment) -> FlowExample {
        let flow = Flow {
            dst_ip: Ipv4Addr::from(a.decode_be(DST_VARS) as u32),
            src_ip: Ipv4Addr::from(a.decode_be(SRC_VARS) as u32),
            protocol: a.decode_be(PROTO_VARS) as u8,
            src_port: a.decode_be(SPORT_VARS) as u16,
            dst_port: a.decode_be(DPORT_VARS) as u16,
        };
        FlowExample { flow }
    }

    /// Encode a concrete flow as a point predicate (for differential tests).
    pub fn flow_bdd(&mut self, f: &Flow) -> Bdd {
        let dst: Vec<u32> = DST_VARS.collect();
        let src: Vec<u32> = SRC_VARS.collect();
        let proto: Vec<u32> = PROTO_VARS.collect();
        let sp: Vec<u32> = SPORT_VARS.collect();
        let dp: Vec<u32> = DPORT_VARS.collect();
        let mut acc = bits::eq_const(&mut self.manager, &dst, u64::from(u32::from(f.dst_ip)));
        let b = bits::eq_const(&mut self.manager, &src, u64::from(u32::from(f.src_ip)));
        acc = self.manager.and(acc, b);
        let b = bits::eq_const(&mut self.manager, &proto, u64::from(f.protocol));
        acc = self.manager.and(acc, b);
        let b = bits::eq_const(&mut self.manager, &sp, u64::from(f.src_port));
        acc = self.manager.and(acc, b);
        let b = bits::eq_const(&mut self.manager, &dp, u64::from(f.dst_port));
        acc = self.manager.and(acc, b);
        acc
    }

    /// The set of packets with a given port range, for tests.
    pub fn dst_port_bdd(&mut self, r: &PortRange) -> Bdd {
        let v: Vec<u32> = DPORT_VARS.collect();
        bits::range_const(&mut self.manager, &v, u64::from(r.lo), u64::from(r.hi))
    }

    /// The set of packets with a given protocol, for tests.
    pub fn protocol_bdd(&mut self, p: IpProtocol) -> Bdd {
        match p.number() {
            Some(n) => {
                let v: Vec<u32> = PROTO_VARS.collect();
                bits::eq_const(&mut self.manager, &v, u64::from(n))
            }
            None => Bdd::TRUE,
        }
    }
}

/// A decoded packet example for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowExample {
    /// The concrete flow.
    pub flow: Flow,
}

impl fmt::Display for FlowExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.flow)
    }
}
