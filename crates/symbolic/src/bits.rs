//! Bit-vector helpers: equality and interval constraints over big-endian
//! variable runs.

use campion_bdd::{AnyManager, Bdd};

/// Constrain variables `vars[0..]` (big-endian) to equal the low `vars.len()`
/// bits of `value`.
pub fn eq_const(m: &mut AnyManager, vars: &[u32], value: u64) -> Bdd {
    let n = vars.len();
    let mut acc = Bdd::TRUE;
    for (i, &v) in vars.iter().enumerate() {
        let bit = (value >> (n - 1 - i)) & 1 == 1;
        let lit = m.literal(v, bit);
        acc = m.and(acc, lit);
    }
    acc
}

/// Constrain the first `prefix_len` of the 32 `vars` to equal the top bits
/// of `bits` (a prefix-address constraint).
pub fn prefix_const(m: &mut AnyManager, vars: &[u32], bits: u32, prefix_len: u8) -> Bdd {
    debug_assert_eq!(vars.len(), 32);
    // Built bottom-up, one node per constrained bit. The top-down
    // `and(acc, literal)` form re-walks the whole accumulated chain on
    // every bit (quadratic apply work) and interns a partial chain per
    // step; this is the ddNF builder's per-node encode, so it runs tens
    // of thousands of times per comparison.
    let mut acc = Bdd::TRUE;
    for i in (0..usize::from(prefix_len)).rev() {
        let bit = (bits >> (31 - i)) & 1 == 1;
        let var = m.var(vars[i]);
        acc = if bit {
            m.ite(var, acc, Bdd::FALSE)
        } else {
            m.ite(var, Bdd::FALSE, acc)
        };
    }
    acc
}

/// Constrain 32 address variables by a wildcard mask: every *care* bit must
/// equal the base address bit.
pub fn wildcard_const(m: &mut AnyManager, vars: &[u32], addr: u32, wildcard: u32) -> Bdd {
    debug_assert_eq!(vars.len(), 32);
    let mut acc = Bdd::TRUE;
    for (i, &v) in vars.iter().enumerate() {
        let pos = 31 - i;
        if (wildcard >> pos) & 1 == 0 {
            let bit = (addr >> pos) & 1 == 1;
            let lit = m.literal(v, bit);
            acc = m.and(acc, lit);
        }
    }
    acc
}

/// `value ≤ hi` over big-endian variables.
pub fn le_const(m: &mut AnyManager, vars: &[u32], hi: u64) -> Bdd {
    // Build from the least-significant bit backwards:
    // le(empty) = true; prepending bit b of the bound:
    //   bound-bit 1: var=0 → anything below is fine; var=1 → rest must be ≤.
    //   bound-bit 0: var must be 0 and the rest ≤.
    let n = vars.len();
    let mut acc = Bdd::TRUE;
    for i in (0..n).rev() {
        let bound_bit = (hi >> (n - 1 - i)) & 1 == 1;
        let v = vars[i];
        let var = m.var(v);
        acc = if bound_bit {
            m.ite(var, acc, Bdd::TRUE)
        } else {
            m.ite(var, Bdd::FALSE, acc)
        };
    }
    acc
}

/// `value ≥ lo` over big-endian variables.
pub fn ge_const(m: &mut AnyManager, vars: &[u32], lo: u64) -> Bdd {
    let n = vars.len();
    let mut acc = Bdd::TRUE;
    for i in (0..n).rev() {
        let bound_bit = (lo >> (n - 1 - i)) & 1 == 1;
        let v = vars[i];
        let var = m.var(v);
        acc = if bound_bit {
            m.ite(var, acc, Bdd::FALSE)
        } else {
            m.ite(var, Bdd::TRUE, acc)
        };
    }
    acc
}

/// `lo ≤ value ≤ hi` over big-endian variables.
pub fn range_const(m: &mut AnyManager, vars: &[u32], lo: u64, hi: u64) -> Bdd {
    let a = ge_const(m, vars, lo);
    let b = le_const(m, vars, hi);
    m.and(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use campion_bdd::Assignment;

    fn assign(n: u32, value: u64, width: usize) -> Assignment {
        let mut a = Assignment::all_false(n);
        for i in 0..width {
            a.set(i as u32, (value >> (width - 1 - i)) & 1 == 1);
        }
        a
    }

    #[test]
    fn eq_const_matches_exactly() {
        let mut m = AnyManager::new_private(4);
        let vars: Vec<u32> = (0..4).collect();
        let f = eq_const(&mut m, &vars, 0b1010);
        for v in 0..16u64 {
            assert_eq!(m.eval(f, &assign(4, v, 4)), v == 0b1010);
        }
    }

    #[test]
    fn interval_bounds_are_inclusive() {
        let mut m = AnyManager::new_private(6);
        let vars: Vec<u32> = (0..6).collect();
        let f = range_const(&mut m, &vars, 16, 32);
        for v in 0..64u64 {
            assert_eq!(m.eval(f, &assign(6, v, 6)), (16..=32).contains(&v), "v={v}");
        }
        let le = le_const(&mut m, &vars, 0);
        assert_eq!(m.sat_count(le), 1);
        let ge = ge_const(&mut m, &vars, 0);
        assert!(m.is_true(ge));
    }

    #[test]
    fn wildcard_const_semantics() {
        let mut m = AnyManager::new_private(32);
        let vars: Vec<u32> = (0..32).collect();
        // 10.0.0.0 with wildcard 0.0.2.255: bit 22 (the "2") and the last
        // octet are free.
        let addr = u32::from(std::net::Ipv4Addr::new(10, 0, 0, 0));
        let wc = u32::from(std::net::Ipv4Addr::new(0, 0, 2, 255));
        let f = wildcard_const(&mut m, &vars, addr, wc);
        assert_eq!(m.sat_count(f), 1 << 9);
        let hit = u64::from(u32::from(std::net::Ipv4Addr::new(10, 0, 2, 77)));
        let miss = u64::from(u32::from(std::net::Ipv4Addr::new(10, 0, 1, 77)));
        assert!(m.eval(f, &assign(32, hit, 32)));
        assert!(!m.eval(f, &assign(32, miss, 32)));
    }
}
