//! Tests for the symbolic encodings, including differential tests against
//! the concrete IR interpreters.

use campion_cfg::parse_config;
use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
use campion_ir::{lower, Match, RouteAdvert, RouterIr};
use campion_net::{Community, Flow, Prefix, PrefixRange};

use crate::route_space::FieldState;
use crate::{PacketSpace, RouteSpace};

fn fig1() -> (RouterIr, RouterIr) {
    (
        lower(&parse_config(FIGURE1_CISCO).unwrap()).unwrap(),
        lower(&parse_config(FIGURE1_JUNIPER).unwrap()).unwrap(),
    )
}

#[test]
fn route_space_layout_from_figure1() {
    let (c, j) = fig1();
    let space = RouteSpace::for_policies(&[&c.policies["POL"], &j.policies["POL"]]);
    // Two literal atoms (10:10, 10:11), no regexes, no tags, no metrics.
    assert_eq!(space.atoms().len(), 2);
    assert_eq!(space.num_vars(), 41 + 2);
}

#[test]
fn prefix_range_bdd_counts() {
    let (c, _) = fig1();
    let mut space = RouteSpace::for_policies(&[&c.policies["POL"]]);
    // Exact /16: 16 fixed address bits, and canonicality zeroes the host
    // bits, so only the non-prefix vars (protocol + atoms) remain free.
    let r: PrefixRange = "10.9.0.0/16:16-16".parse().unwrap();
    let b = space.prefix_range_bdd(&r);
    let other = space.num_vars() - 32 - 6;
    assert_eq!(space.manager.sat_count(b), 1u128 << other);
    // The whole-range form frees exactly the address bits the lengths
    // allow: sum over len 16..=32 of 2^(len-16) canonical prefixes.
    let wide: PrefixRange = "10.9.0.0/16:16-32".parse().unwrap();
    let wb = space.prefix_range_bdd(&wide);
    let prefixes: u128 = (16..=32u32).map(|l| 1u128 << (l - 16)).sum();
    assert_eq!(space.manager.sat_count(wb), prefixes << other);
}

/// The symbolic encoding of each Figure-1 clause agrees with the concrete
/// interpreter on a grid of advertisements.
#[test]
fn match_bdd_agrees_with_concrete_matching() {
    let (c, j) = fig1();
    for router in [&c, &j] {
        let pol = &router.policies["POL"];
        let mut space = RouteSpace::for_policies(&[&c.policies["POL"], &j.policies["POL"]]);
        let state = space.initial_state();
        let prefixes = [
            "10.9.0.0/16",
            "10.9.1.0/24",
            "10.100.0.0/16",
            "10.100.0.0/17",
            "9.9.9.0/24",
            "0.0.0.0/0",
        ];
        let comm_sets: [&[Community]; 4] = [
            &[],
            &[Community::new(10, 10)],
            &[Community::new(10, 11)],
            &[Community::new(10, 10), Community::new(10, 11)],
        ];
        for clause in &pol.clauses {
            for m in &clause.matches {
                let bdd = space.match_bdd(m, &state);
                for p in prefixes {
                    for cs in comm_sets {
                        let advert = RouteAdvert::bgp(p.parse::<Prefix>().unwrap())
                            .with_communities(cs.iter().copied());
                        let sym = eval_on_advert(&space, bdd, &advert);
                        assert_eq!(
                            sym,
                            m.holds(&advert),
                            "clause {} match {m:?} on {advert}",
                            clause.label
                        );
                    }
                }
            }
        }
    }
}

/// Encode a concrete advertisement as an assignment and evaluate.
fn eval_on_advert(space: &RouteSpace, f: campion_bdd::Bdd, advert: &RouteAdvert) -> bool {
    let mut a = campion_bdd::Assignment::all_false(space.num_vars());
    let bits = advert.prefix.bits();
    for i in 0..32u32 {
        a.set(i, (bits >> (31 - i)) & 1 == 1);
    }
    let len = advert.prefix.len();
    for i in 0..6u32 {
        a.set(32 + i, (len >> (5 - i)) & 1 == 1);
    }
    // protocol: BGP = 3.
    a.set(38, false);
    a.set(39, true);
    a.set(40, true);
    for (i, key) in space.atoms().iter().enumerate() {
        if let crate::AtomKey::Literal(c) = key {
            if advert.has_community(*c) {
                a.set(41 + i as u32, true);
            }
        }
    }
    space.manager.eval(f, &a)
}

#[test]
fn sets_change_later_matches() {
    // A policy that first sets a community, then matches it: the symbolic
    // state must see the write.
    let r = lower(
        &parse_config(
            "ip community-list standard C permit 9:9\n\
             route-map M permit 10\n\
             \x20set community 9:9\n\
             \x20continue 20\n\
             route-map M deny 20\n\
             \x20match community C\n",
        )
        .unwrap(),
    )
    .unwrap();
    let pol = &r.policies["M"];
    let mut space = RouteSpace::for_policies(&[pol]);
    let mut state = space.initial_state();
    // After clause 0's sets, the atom for 9:9 must be constantly true.
    space.apply_sets(&mut state, &pol.clauses[0].sets);
    let m = &pol.clauses[1].matches[0];
    let b = space.match_bdd(m, &state);
    assert!(
        space.manager.is_true(b),
        "set community feeds the later match"
    );
}

#[test]
fn tag_and_metric_fields() {
    let r = lower(
        &parse_config(
            "route-map M deny 10\n\
             \x20match tag 77\n\
             route-map M permit 20\n\
             \x20set tag 77\n",
        )
        .unwrap(),
    )
    .unwrap();
    let pol = &r.policies["M"];
    let mut space = RouteSpace::for_policies(&[pol]);
    let mut state = space.initial_state();
    let m = &pol.clauses[0].matches[0];
    let before = space.match_bdd(m, &state);
    assert!(!space.manager.is_true(before));
    assert!(space.manager.is_sat(before));
    space.apply_sets(&mut state, &pol.clauses[1].sets);
    assert_eq!(state.tag, FieldState::Const(77));
    let after = space.match_bdd(m, &state);
    assert!(space.manager.is_true(after), "tag now constant 77");
}

#[test]
fn project_to_prefix_drops_community_vars() {
    let (c, j) = fig1();
    let mut space = RouteSpace::for_policies(&[&c.policies["POL"], &j.policies["POL"]]);
    let state = space.initial_state();
    // Clause 2 of the Cisco POL: community match.
    let m = &c.policies["POL"].clauses[1].matches[0];
    let b = space.match_bdd(m, &state);
    let p = space.project_to_prefix(b);
    assert!(
        space.manager.is_true(p),
        "every prefix has some matching input"
    );
    let support = space.manager.support(p);
    assert!(support.is_empty());
}

#[test]
fn concretize_round_trip() {
    let (c, j) = fig1();
    let mut space = RouteSpace::for_policies(&[&c.policies["POL"], &j.policies["POL"]]);
    let state = space.initial_state();
    let m = &c.policies["POL"].clauses[1].matches[0];
    let b = space.match_bdd(m, &state);
    let u = space.universe();
    let bu = space.manager.and(b, u);
    let a = space.manager.first_sat_assignment(bu).unwrap();
    let ex = space.concretize(&a);
    assert!(
        !ex.communities.is_empty(),
        "a community-match example must carry a community"
    );
}

#[test]
fn packet_space_rule_agrees_with_concrete_acl() {
    let r = lower(
        &parse_config(
            "ip access-list extended F\n\
             \x20permit tcp 10.0.0.0 0.0.255.255 any eq 443\n\
             \x20deny ip 9.140.0.0 0.0.1.255 any\n\
             \x20permit udp any range 100 200 any\n",
        )
        .unwrap(),
    )
    .unwrap();
    let acl = &r.acls["F"];
    let mut space = PacketSpace::new();
    let flows = [
        Flow::tcp(
            "10.0.1.1".parse().unwrap(),
            999,
            "8.8.8.8".parse().unwrap(),
            443,
        ),
        Flow::tcp(
            "10.0.1.1".parse().unwrap(),
            999,
            "8.8.8.8".parse().unwrap(),
            80,
        ),
        Flow::tcp(
            "10.9.1.1".parse().unwrap(),
            999,
            "8.8.8.8".parse().unwrap(),
            443,
        ),
        Flow::icmp("9.140.1.77".parse().unwrap(), "1.2.3.4".parse().unwrap()),
        Flow::udp(
            "7.7.7.7".parse().unwrap(),
            150,
            "1.2.3.4".parse().unwrap(),
            9,
        ),
        Flow::udp(
            "7.7.7.7".parse().unwrap(),
            99,
            "1.2.3.4".parse().unwrap(),
            9,
        ),
    ];
    for rule in &acl.rules {
        let b = space.rule_bdd(rule);
        for flow in &flows {
            let fb = space.flow_bdd(flow);
            let inter = space.manager.and(b, fb);
            assert_eq!(
                space.manager.is_sat(inter),
                rule.matches(flow),
                "rule {} on {flow}",
                rule.label
            );
        }
    }
}

#[test]
fn packet_space_projections() {
    let r = lower(
        &parse_config(
            "ip access-list extended F\n\
             \x20permit tcp 10.0.0.0 0.0.255.255 host 192.0.2.1 eq 443\n",
        )
        .unwrap(),
    )
    .unwrap();
    let mut space = PacketSpace::new();
    let b = space.rule_bdd(&r.acls["F"].rules[0]);
    let dst = space.project_to_dst(b);
    // Destination projection: exactly the /32.
    let host = space.dst_prefix_bdd(&"192.0.2.1/32".parse().unwrap());
    assert_eq!(dst, host);
    let src = space.project_to_src(b);
    let net = space.src_prefix_bdd(&"10.0.0.0/16".parse().unwrap());
    assert_eq!(src, net);
}

#[test]
fn figure1_semantic_difference_is_nonempty_symbolically() {
    // A quick preview of SemanticDiff: fold both policies into accept-sets
    // and check the disagreement region exists and projects to the right
    // prefixes. (The full algorithm lives in campion-core.)
    let (c, j) = fig1();
    let mut space = RouteSpace::for_policies(&[&c.policies["POL"], &j.policies["POL"]]);
    let mut accept = Vec::new();
    for pol in [&c.policies["POL"], &j.policies["POL"]] {
        let state = space.initial_state();
        // Both policies here have purely terminal clauses, so a simple
        // reverse ite fold gives the accept set.
        let default = match pol.default_terminal {
            campion_ir::Terminal::Accept => campion_bdd::Bdd::TRUE,
            _ => campion_bdd::Bdd::FALSE,
        };
        let mut acc = default;
        for clause in pol.clauses.iter().rev() {
            let mut cond = campion_bdd::Bdd::TRUE;
            for m in &clause.matches {
                let b = space.match_bdd(m, &state);
                cond = space.manager.and(cond, b);
            }
            let val = match clause.terminal {
                campion_ir::Terminal::Accept => campion_bdd::Bdd::TRUE,
                campion_ir::Terminal::Reject => campion_bdd::Bdd::FALSE,
                campion_ir::Terminal::Fallthrough => acc,
            };
            acc = space.manager.ite(cond, val, acc);
        }
        accept.push(acc);
    }
    let u = space.universe();
    let diff = space.manager.xor(accept[0], accept[1]);
    let diff = space.manager.and(diff, u);
    assert!(space.manager.is_sat(diff), "Figure 1 pair must differ");
    // 10.9.1.0/24 must be in the disagreement region.
    let range = space.prefix_range_bdd(&"10.9.1.0/24:24-24".parse().unwrap());
    let hit = space.manager.and(diff, range);
    assert!(space.manager.is_sat(hit));
    // The exact /16 with no communities must NOT be in the region.
    let exact = space.prefix_range_bdd(&"10.9.0.0/16:16-16".parse().unwrap());
    let mut no_comm = exact;
    for i in 0..space.atoms().len() {
        let v = space.manager.nvar(41 + i as u32);
        no_comm = space.manager.and(no_comm, v);
    }
    let miss = space.manager.and(diff, no_comm);
    assert!(!space.manager.is_sat(miss));
}

mod properties {
    use super::*;
    use campion_ir::Terminal;
    use proptest::prelude::*;

    prop_compose! {
        fn arb_advert()(
            bits in any::<u32>(),
            len in 0u8..=32,
            c10 in any::<bool>(),
            c11 in any::<bool>(),
        ) -> RouteAdvert {
            let mut comms = Vec::new();
            if c10 { comms.push(Community::new(10, 10)); }
            if c11 { comms.push(Community::new(10, 11)); }
            RouteAdvert::bgp(Prefix::new(std::net::Ipv4Addr::from(bits), len))
                .with_communities(comms)
        }
    }

    proptest! {
        /// The folded symbolic accept-set agrees with the concrete
        /// interpreter on random advertisements, for both Figure-1 policies.
        #[test]
        fn symbolic_accept_set_equals_concrete(a in arb_advert()) {
            let (c, j) = fig1();
            let mut space =
                RouteSpace::for_policies(&[&c.policies["POL"], &j.policies["POL"]]);
            for pol in [&c.policies["POL"], &j.policies["POL"]] {
                let state = space.initial_state();
                let default = match pol.default_terminal {
                    Terminal::Accept => campion_bdd::Bdd::TRUE,
                    _ => campion_bdd::Bdd::FALSE,
                };
                let mut acc = default;
                for clause in pol.clauses.iter().rev() {
                    let mut cond = campion_bdd::Bdd::TRUE;
                    for m in &clause.matches {
                        let b = space.match_bdd(m, &state);
                        cond = space.manager.and(cond, b);
                    }
                    let val = match clause.terminal {
                        Terminal::Accept => campion_bdd::Bdd::TRUE,
                        Terminal::Reject => campion_bdd::Bdd::FALSE,
                        Terminal::Fallthrough => acc,
                    };
                    acc = space.manager.ite(cond, val, acc);
                }
                let sym = eval_on_advert(&space, acc, &a);
                let conc = pol.evaluate(&a).accept;
                prop_assert_eq!(sym, conc, "policy {} on {}", &pol.name, &a);
            }
        }
    }

    #[test]
    fn match_enum_is_covered() {
        // Guard: if Match grows a variant, match_bdd must be extended.
        let m = Match::Tag(1);
        match m {
            Match::Prefix(_)
            | Match::Community(_)
            | Match::Tag(_)
            | Match::Metric(_)
            | Match::Protocol(_) => {}
        }
    }
}
