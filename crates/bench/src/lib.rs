//! # campion-bench — the experiment harness
//!
//! One binary per table or figure of the paper's evaluation (see the
//! experiment index in DESIGN.md and the measured results in
//! EXPERIMENTS.md):
//!
//! | binary        | reproduces |
//! |---------------|------------|
//! | `table2`      | Table 2 — Campion on Figure 1 (route maps) |
//! | `table3`      | Table 3 — Minesweeper baseline on Figure 1 |
//! | `cex_count`   | §2.1 — iterated counterexamples until coverage |
//! | `table4`      | Table 4 — Campion on the §2.2 static routes |
//! | `table5`      | Table 5 — Minesweeper baseline on the same |
//! | `table6`      | Table 6 — the three data-center scenarios |
//! | `table7`      | Table 7 — gateway ACL debugging example |
//! | `table8`      | Table 8 — the university core/border pairs |
//! | `scalability` | §5.4 — SemanticDiff runtime vs ACL size |
//! | `fig3_demo`   | Figure 3 — the ddNF/GetMatch worked example |
//!
//! Criterion benches (`cargo bench`) cover the §5.4 scaling curves and the
//! end-to-end per-pair runtime claim (<5 s).

#![warn(missing_docs)]

use campion_cfg::parse_config;
use campion_ir::{lower, RouterIr};

/// Parse and lower one configuration, panicking with context on failure
/// (the harness only feeds generated or checked-in configs).
pub fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).unwrap_or_else(|e| panic!("parse error: {e}")))
        .unwrap_or_else(|e| panic!("lowering error: {e}"))
}

/// The Table 7 gateway ACL pair: a Cisco ACL rejecting a source range that
/// the Juniper filter's whitelist term accepts (addresses follow the
/// paper's anonymized values).
pub fn table7_pair() -> (String, String) {
    let cisco = "\
hostname gateway-cisco
ip access-list extended VM_FILTER_1
 permit tcp 9.140.0.0 0.0.1.255 any eq 22
 deny ip 9.140.0.0 0.0.1.255 any
 permit ip any any
"
    .to_string();
    let juniper = "\
system { host-name gateway-juniper; }
firewall {
    family inet {
        filter VM_FILTER_1 {
            term permit_ssh {
                from {
                    source-address 9.140.0.0/23;
                    protocol tcp;
                    destination-port 22;
                }
                then accept;
            }
            term permit_whitelist {
                then accept;
            }
        }
    }
}
"
    .to_string();
    (cisco, juniper)
}

/// Render a compact one-line-per-row table to stdout.
pub fn print_rows(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain([h.len()])
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    println!(
        "{}",
        fmt_row(headers.iter().map(|s| s.to_string()).collect())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-")
    );
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}
