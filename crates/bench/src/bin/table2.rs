//! Table 2: Campion's output on the Figure 1 route maps — two differences,
//! each with header and text localization.

use campion_bench::load;
use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
use campion_core::{compare_routers, CampionOptions};

fn main() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    let report = compare_routers(&c, &j, &CampionOptions::default());
    println!("Reproducing Table 2 — Campion on Figure 1\n");
    for (i, d) in report.route_map_diffs.iter().enumerate() {
        println!(
            "Table 2({}) — Difference {}:",
            (b'a' + i as u8) as char,
            i + 1
        );
        println!("{d}");
    }
    assert_eq!(
        report.route_map_diffs.len(),
        2,
        "paper reports two differences"
    );
    println!("[shape check] 2 differences found, matching the paper ✓");
}
