//! The §5.4 scalability experiment: SemanticDiff runtime on Capirca-like
//! generated ACL pairs with 10 injected differences, across sizes —
//! plus parsing time, which the paper reports as comparable.
//!
//! Paper (2.2 GHz CPU): <1 s at 1 000 rules, ~15 s at 10 000 rules,
//! parsing ~13 s at 10 000. Absolute numbers differ across hosts; the
//! shape to match is superlinear growth with the 1 000→10 000 ratio ≫ 10×
//! and parse time in the same order as the diff.

use std::time::Instant;

use campion_bench::{load, print_rows};
use campion_core::{compare_routers, CampionOptions};
use campion_gen::capirca_acl_pair;

fn main() {
    println!("Reproducing §5.4 — SemanticDiff scalability on generated ACLs\n");
    let sizes = [100usize, 500, 1000, 5000, 10000];
    let mut rows = Vec::new();
    let mut times = Vec::new();
    for &n in &sizes {
        let diffs = 10.min(n / 2);
        let (cisco, juniper) = capirca_acl_pair(n, diffs, 0xC0FFEE + n as u64);

        let t0 = Instant::now();
        let rc = load(&cisco);
        let rj = load(&juniper);
        let parse_time = t0.elapsed();

        let t1 = Instant::now();
        let report = compare_routers(&rc, &rj, &CampionOptions::default());
        let diff_time = t1.elapsed();

        times.push(diff_time.as_secs_f64());
        rows.push(vec![
            n.to_string(),
            format!("{:.3}", parse_time.as_secs_f64()),
            format!("{:.3}", diff_time.as_secs_f64()),
            report.acl_diffs.len().to_string(),
        ]);
    }
    print_rows(
        "SemanticDiff runtime vs ACL size (10 injected differences)",
        &["rules", "parse+lower (s)", "SemanticDiff (s)", "differences found"],
        &rows,
    );
    let ratio = times[times.len() - 1] / times[2].max(1e-9);
    println!("\n1 000 → 10 000 rules runtime ratio: {ratio:.1}x (paper: <1 s → ~15 s)");
}
