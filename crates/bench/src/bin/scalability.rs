//! The §5.4 scalability experiment: SemanticDiff runtime on Capirca-like
//! generated ACL pairs with 10 injected differences, across sizes —
//! plus parsing time, which the paper reports as comparable.
//!
//! Paper (2.2 GHz CPU): <1 s at 1 000 rules, ~15 s at 10 000 rules,
//! parsing ~13 s at 10 000. Absolute numbers differ across hosts; the
//! shape to match is superlinear growth with the 1 000→10 000 ratio ≫ 10×
//! and parse time in the same order as the diff.
//!
//! A second section measures the parallel driver: one router pair holding
//! many independent ACLs, compared at `jobs=1` and `jobs=4`. Pass `--json`
//! to additionally write machine-readable results (timings plus BDD
//! cache-hit counters) to `BENCH_campion.json`.

use std::fmt::Write as _;
use std::time::Instant;

use campion_bench::{load, print_rows};
use campion_core::{compare_routers, CampionOptions, CampionReport};
use campion_fleet::{gen as fleet_gen, Daemon};
use campion_gen::capirca_acl_pair;

/// Per-size measurement for the JSON report.
struct SizeResult {
    rules: usize,
    parse_s: f64,
    semdiff_s: f64,
    diffs_found: usize,
    nodes: u64,
    peak_nodes: u64,
    post_gc_nodes: u64,
    gc_runs: u64,
    gc_pauses: u64,
    gc_pause_us: u64,
    apply_hit_rate: f64,
    unique_hit_rate: f64,
    pairs_examined: u64,
    pairs_pruned: u64,
    rule_cache_hit_rate: f64,
    /// Per-phase timing breakdown (`Trace::phases_json`), captured for the
    /// CI-gated sizes only.
    phases: Option<String>,
    /// Localization share of the whole comparison: (`headerloc.ddnf` +
    /// `present.localize`) ÷ `core.compare` wall seconds — the nested
    /// `headerloc.localize` spans ride inside `present.localize`. CI gates
    /// the 10 000-rule value at ≤ 0.45.
    headerloc_share: Option<f64>,
    /// Per-difference localization sub-items: how many `headerloc.localize`
    /// and `present.localize` spans the comparison ran — the work items
    /// the driver fans out across its pool when differences outnumber
    /// pairs.
    localize_subitems: Option<u64>,
}

/// The sizes whose per-phase breakdown lands in `BENCH_campion.json` —
/// the two workloads the CI regression gate watches.
const PHASE_SIZES: [usize; 2] = [1000, 10000];

fn opts_with_jobs(jobs: usize) -> CampionOptions {
    CampionOptions {
        jobs,
        ..CampionOptions::default()
    }
}

/// Concatenate `pairs` renamed copies of a generated ACL pair into one
/// Cisco and one Juniper configuration, so a single `compare_routers`
/// call carries `pairs` independent semantic work items.
fn multi_acl_pair(pairs: usize, rules: usize, seed: u64) -> (String, String) {
    let mut cisco = String::new();
    let mut juniper = String::new();
    for i in 0..pairs {
        let (c, j) = capirca_acl_pair(rules, 10.min(rules / 2), seed + i as u64);
        cisco.push_str(&c.replace("ACL-GEN", &format!("ACL-GEN-{i}")));
        juniper.push_str(&j.replace("ACL-GEN", &format!("ACL-GEN-{i}")));
    }
    (cisco, juniper)
}

fn timed_compare(cisco: &str, juniper: &str, opts: &CampionOptions) -> (f64, CampionReport) {
    let rc = load(cisco);
    let rj = load(juniper);
    let t = Instant::now();
    let report = compare_routers(&rc, &rj, opts);
    (t.elapsed().as_secs_f64(), report)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    println!("Reproducing §5.4 — SemanticDiff scalability on generated ACLs\n");
    let sizes = [100usize, 500, 1000, 5000, 10000];
    let mut rows = Vec::new();
    let mut times = Vec::new();
    let mut size_results = Vec::new();
    for &n in &sizes {
        let diffs = 10.min(n / 2);
        let (cisco, juniper) = capirca_acl_pair(n, diffs, 0xC0FFEE + n as u64);

        // Trace the CI-gated sizes so the JSON report carries a per-phase
        // breakdown. The collector's hot path is a relaxed atomic load plus
        // a handful of events per work item, so it does not move the timing
        // columns measurably.
        let traced = PHASE_SIZES.contains(&n);
        if traced {
            campion_trace::enable();
        }

        let t0 = Instant::now();
        let rc = load(&cisco);
        let rj = load(&juniper);
        let parse_time = t0.elapsed();

        // Single pair ⇒ a single semantic work item: this section times the
        // BDD engine itself, so run it on one worker.
        let t1 = Instant::now();
        let report = compare_routers(&rc, &rj, &opts_with_jobs(1));
        let diff_time = t1.elapsed();

        let (phases, headerloc_share, localize_subitems) = if traced {
            campion_trace::disable();
            let trace = campion_trace::drain();
            println!("--- per-phase breakdown at {n} rules ---");
            print!("{}", trace.render_table());
            println!();
            let stats = trace.phase_stats();
            let phase = |name: &str| stats.iter().find(|s| s.name == name);
            let total_s = |name: &str| phase(name).map_or(0.0, |s| s.total_ns as f64 / 1e9);
            // `present.localize` wraps the nested `headerloc.localize`
            // spans, so the localization wall is ddNF builds plus the
            // per-difference presentation spans — adding the nested spans
            // on top would double-count them.
            let loc_s = total_s("headerloc.ddnf") + total_s("present.localize");
            let compare_s = total_s("core.compare");
            let share = if compare_s > 0.0 {
                loc_s / compare_s
            } else {
                0.0
            };
            let subitems = phase("headerloc.localize").map_or(0, |s| s.count)
                + phase("present.localize").map_or(0, |s| s.count);
            println!(
                "localization share of core.compare: {share:.3} \
                 ({subitems} localize sub-items)\n"
            );
            (Some(trace.phases_json()), Some(share), Some(subitems))
        } else {
            (None, None, None)
        };

        times.push(diff_time.as_secs_f64());
        let s = &report.bdd_stats;
        rows.push(vec![
            n.to_string(),
            format!("{:.3}", parse_time.as_secs_f64()),
            format!("{:.3}", diff_time.as_secs_f64()),
            report.acl_diffs.len().to_string(),
            s.peak_nodes.to_string(),
            s.post_gc_nodes.to_string(),
            format!("{:.1}%", s.apply_hit_rate() * 100.0),
            format!("{}/{}", s.pairs_pruned, s.pairs_pruned + s.pairs_examined),
        ]);
        size_results.push(SizeResult {
            rules: n,
            parse_s: parse_time.as_secs_f64(),
            semdiff_s: diff_time.as_secs_f64(),
            diffs_found: report.acl_diffs.len(),
            nodes: s.nodes,
            peak_nodes: s.peak_nodes,
            post_gc_nodes: s.post_gc_nodes,
            gc_runs: s.gc_runs,
            gc_pauses: s.gc_pauses,
            gc_pause_us: s.gc_pause_us,
            apply_hit_rate: s.apply_hit_rate(),
            unique_hit_rate: s.unique_hit_rate(),
            pairs_examined: s.pairs_examined,
            pairs_pruned: s.pairs_pruned,
            rule_cache_hit_rate: s.rule_cache_hit_rate(),
            phases,
            headerloc_share,
            localize_subitems,
        });
    }
    print_rows(
        "SemanticDiff runtime vs ACL size (10 injected differences)",
        &[
            "rules",
            "parse+lower (s)",
            "SemanticDiff (s)",
            "differences found",
            "peak nodes",
            "post-GC nodes",
            "apply-cache hits",
            "pairs pruned/total",
        ],
        &rows,
    );
    let ratio = times[times.len() - 1] / times[2].max(1e-9);
    println!("\n1 000 → 10 000 rules runtime ratio: {ratio:.1}x (paper: <1 s → ~15 s)");

    // Parallel driver: one comparison spanning many independent ACL pairs.
    // The speedup scales with real cores — on a single-core host the two
    // runs time-slice the same CPU and the ratio stays ≈1.
    const PAIRS: usize = 12;
    const PAIR_RULES: usize = 1000;
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\nParallel driver — {PAIRS} ACL pairs of {PAIR_RULES} rules each \
         ({hw} hardware thread(s) available)"
    );
    let (cisco, juniper) = multi_acl_pair(PAIRS, PAIR_RULES, 0xBEEF);
    let (t_seq, rep_seq) = timed_compare(&cisco, &juniper, &opts_with_jobs(1));
    // On a single-core host a multi-job run just time-slices the same CPU
    // (and the driver now clamps to one worker anyway), so a "speedup"
    // number is pure noise — skip the parallel runs and say so.
    let par = if hw < 2 {
        println!("  jobs=1: {t_seq:.3} s   (parallel runs skipped: single hardware thread)");
        None
    } else {
        let (t_2, rep_2) = timed_compare(&cisco, &juniper, &opts_with_jobs(2));
        let (t_4, rep_4) = timed_compare(&cisco, &juniper, &opts_with_jobs(4));
        for rep in [&rep_2, &rep_4] {
            assert_eq!(
                rep_seq.to_string(),
                rep.to_string(),
                "parallel report must be byte-identical"
            );
        }
        let speedup2 = t_seq / t_2.max(1e-9);
        let speedup4 = t_seq / t_4.max(1e-9);
        println!(
            "  jobs=1: {t_seq:.3} s   jobs=2: {t_2:.3} s ({speedup2:.2}x)   \
             jobs=4: {t_4:.3} s ({speedup4:.2}x)"
        );
        Some((t_2, speedup2, t_4, speedup4))
    };
    println!(
        "  {} differences; {} BDD nodes across pair managers",
        rep_seq.acl_diffs.len(),
        rep_seq.bdd_stats.nodes
    );

    // Shared concurrent arena — the tentpole engine. Re-run the 10k-rule
    // single pair (one semantic work item, so all parallelism is
    // *intra-pair*: two-side enumeration plus the diff's row fan on forked
    // workers) on the shared manager and check the report against the
    // private engine's bytes.
    const SHARED_RULES: usize = 10000;
    let shared_jobs = if hw < 2 { 1 } else { 4.min(hw) };
    println!(
        "\nShared-manager engine — one {SHARED_RULES}-rule ACL pair, \
         intra-pair jobs={shared_jobs}"
    );
    let (cisco1, juniper1) = capirca_acl_pair(SHARED_RULES, 10, 0xC0FFEE + SHARED_RULES as u64);
    let (t_priv, rep_priv) = timed_compare(&cisco1, &juniper1, &opts_with_jobs(1));
    let shared_opts = CampionOptions {
        jobs: shared_jobs,
        shared_manager: true,
        ..CampionOptions::default()
    };
    let (t_shared, rep_shared) = timed_compare(&cisco1, &juniper1, &shared_opts);
    assert_eq!(
        rep_priv.to_string(),
        rep_shared.to_string(),
        "shared-manager report must be byte-identical to the private engine's"
    );
    let shared_speedup = t_priv / t_shared.max(1e-9);
    let shard_cas = rep_shared.bdd_stats.shard_cas_retries;
    let shard_waits = rep_shared.bdd_stats.shard_lock_waits;
    println!(
        "  private jobs=1: {t_priv:.3} s   shared jobs={shared_jobs}: {t_shared:.3} s \
         (speedup {shared_speedup:.2}x)\n  \
         shard CAS retries: {shard_cas}   shard lock waits: {shard_waits}"
    );

    // Tracing overhead: the observability bar is that the collector costs
    // nothing when idle and close to nothing when armed. Reuse the 10k-rule
    // pair, min-of-3 each way in the same process (min, not mean — the
    // floor is the honest cost once the allocator and caches are warm). CI
    // gates the enabled/disabled ratio at ≤ 1.02.
    let (rc1, rj1) = (load(&cisco1), load(&juniper1));
    let min_of_3 = |traced: bool| -> f64 {
        (0..3)
            .map(|_| {
                if traced {
                    campion_trace::enable();
                }
                let t = Instant::now();
                let rep = compare_routers(&rc1, &rj1, &opts_with_jobs(1));
                let dt = t.elapsed().as_secs_f64();
                if traced {
                    campion_trace::disable();
                    let _ = campion_trace::drain();
                }
                assert!(!rep.acl_diffs.is_empty());
                dt
            })
            .fold(f64::INFINITY, f64::min)
    };
    let _ = min_of_3(false); // warm-up, discarded
    let overhead_off = min_of_3(false);
    let overhead_on = min_of_3(true);
    let overhead_ratio = overhead_on / overhead_off.max(1e-9);
    println!(
        "\nTracing overhead — {SHARED_RULES}-rule pair, min of 3:\n  \
         collector off: {overhead_off:.3} s   on: {overhead_on:.3} s   \
         ratio: {overhead_ratio:.3}x"
    );

    // Fleet daemon incrementality: a cold whole-fleet ingest vs a warm
    // re-ingest with one router perturbed. The warm path recomputes one
    // pair and answers the rest from the store, so its wall time tracks a
    // single compare plus hashing — the §2h service-mode speedup.
    const FLEET_PAIRS: usize = 12;
    const FLEET_RULES: usize = 400;
    println!("\nFleet incremental ingest — {FLEET_PAIRS} pairs of {FLEET_RULES}-rule ACLs");
    let store_dir =
        std::env::temp_dir().join(format!("campion-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut daemon = Daemon::open(&store_dir, opts_with_jobs(0)).expect("open fleet store");
    let cold_input = fleet_gen::fleet_input("cold", FLEET_PAIRS, FLEET_RULES, 10, 0xF1EE7, None);
    let t_cold = Instant::now();
    let cold = daemon.ingest(&cold_input).expect("cold ingest");
    let cold_s = t_cold.elapsed().as_secs_f64();
    let warm_input = fleet_gen::fleet_input("warm", FLEET_PAIRS, FLEET_RULES, 10, 0xF1EE7, Some(0));
    let t_warm = Instant::now();
    let warm = daemon.ingest(&warm_input).expect("warm ingest");
    let warm_s = t_warm.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&store_dir);
    assert_eq!(
        (cold.pairs_computed, warm.pairs_computed, warm.pairs_cached),
        (FLEET_PAIRS, 1, FLEET_PAIRS - 1),
        "incrementality broke: warm ingest must recompute exactly the touched pair"
    );
    let fleet_speedup = cold_s / warm_s.max(1e-9);
    println!(
        "  cold: {cold_s:.3} s ({} pairs computed)   warm: {warm_s:.3} s \
         ({} computed, {} cached)   speedup: {fleet_speedup:.1}x",
        cold.pairs_computed, warm.pairs_computed, warm.pairs_cached
    );

    if json {
        let mut out = String::from("{\n  \"sizes\": [\n");
        for (i, r) in size_results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rules\": {}, \"parse_s\": {:.6}, \"semdiff_s\": {:.6}, \
                 \"diffs_found\": {}, \"bdd_nodes\": {}, \"peak_nodes\": {}, \
                 \"post_gc_nodes\": {}, \"gc_runs\": {}, \"gc_pauses\": {}, \
                 \"gc_pause_us\": {}, \"apply_hit_rate\": {:.4}, \
                 \"unique_hit_rate\": {:.4}, \"pairs_examined\": {}, \
                 \"pairs_pruned\": {}, \"rule_cache_hit_rate\": {:.4}}}",
                r.rules,
                r.parse_s,
                r.semdiff_s,
                r.diffs_found,
                r.nodes,
                r.peak_nodes,
                r.post_gc_nodes,
                r.gc_runs,
                r.gc_pauses,
                r.gc_pause_us,
                r.apply_hit_rate,
                r.unique_hit_rate,
                r.pairs_examined,
                r.pairs_pruned,
                r.rule_cache_hit_rate
            );
            out.push_str(if i + 1 < size_results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let par_timing = match par {
            Some((t_2, speedup2, t_4, speedup4)) => format!(
                "\"jobs2_s\": {t_2:.6}, \"jobs2_speedup\": {speedup2:.3}, \
                 \"jobs4_s\": {t_4:.6}, \"speedup\": {speedup4:.3}, \
                 \"parallel_speedup\": {speedup4:.3}"
            ),
            None => "\"skipped_single_core\": true".to_string(),
        };
        // Per-phase breakdowns for the gated sizes, keyed by rule count.
        out.push_str("  ],\n  \"phases\": {\n");
        let phase_entries: Vec<String> = size_results
            .iter()
            .filter_map(|r| {
                r.phases
                    .as_ref()
                    .map(|p| format!("    \"{}\": {p}", r.rules))
            })
            .collect();
        out.push_str(&phase_entries.join(",\n"));
        out.push_str("\n  },\n");
        // Localization metrics for the gated sizes, as their own top-level
        // maps (the CI per-phase walker expects every `phases` value to be
        // a dict of span stats, so these must not live inside it).
        let share_entries: Vec<String> = size_results
            .iter()
            .filter_map(|r| {
                r.headerloc_share
                    .map(|s| format!("    \"{}\": {s:.4}", r.rules))
            })
            .collect();
        out.push_str("  \"headerloc_share\": {\n");
        out.push_str(&share_entries.join(",\n"));
        out.push_str("\n  },\n");
        let sub_entries: Vec<String> = size_results
            .iter()
            .filter_map(|r| {
                r.localize_subitems
                    .map(|c| format!("    \"{}\": {c}", r.rules))
            })
            .collect();
        out.push_str("  \"localize_subitems\": {\n");
        out.push_str(&sub_entries.join(",\n"));
        out.push_str("\n  },\n");
        let _ = write!(
            out,
            "  \"fleet_incremental\": {{\n    \
             \"pairs\": {FLEET_PAIRS}, \"rules_per_pair\": {FLEET_RULES}, \
             \"cold_s\": {cold_s:.6}, \"warm_s\": {warm_s:.6}, \
             \"warm_pairs_computed\": {}, \"warm_pairs_cached\": {}, \
             \"warm_parses_skipped\": {}, \"speedup\": {fleet_speedup:.3}\n  }},\n",
            warm.pairs_computed, warm.pairs_cached, warm.router_parses_skipped
        );
        let _ = write!(
            out,
            "  \"shared_manager\": {{\n    \
             \"rules\": {SHARED_RULES}, \"jobs\": {shared_jobs}, \
             \"private_s\": {t_priv:.6}, \"shared_s\": {t_shared:.6}, \
             \"intra_pair_speedup\": {shared_speedup:.3}, \
             \"shard_cas_retries\": {shard_cas}, \
             \"shard_lock_waits\": {shard_waits}, \
             \"hardware_threads\": {hw}\n  }},\n"
        );
        let _ = write!(
            out,
            "  \"trace_overhead\": {{\n    \
             \"rules\": {SHARED_RULES}, \"untraced_s\": {overhead_off:.6}, \
             \"traced_s\": {overhead_on:.6}, \"ratio\": {overhead_ratio:.4}\n  }},\n"
        );
        let _ = write!(
            out,
            "  \"ratio_1k_to_10k\": {ratio:.2},\n  \"parallel\": {{\n    \
             \"acl_pairs\": {PAIRS}, \"rules_per_pair\": {PAIR_RULES}, \
             \"jobs1_s\": {t_seq:.6}, {par_timing}, \
             \"hardware_threads\": {hw},\n    \
             \"apply_hit_rate\": {:.4}, \"unique_hit_rate\": {:.4}\n  }}\n}}\n",
            rep_seq.bdd_stats.apply_hit_rate(),
            rep_seq.bdd_stats.unique_hit_rate()
        );
        std::fs::write("BENCH_campion.json", &out).expect("write BENCH_campion.json");
        println!("\nWrote BENCH_campion.json");
    }
}
