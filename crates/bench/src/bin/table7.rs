//! Table 7: the gateway ACL debugging example — header localization of the
//! impacted packets plus the exact ACL line / filter term.

use campion_bench::{load, table7_pair};
use campion_core::{compare_routers, CampionOptions};

fn main() {
    let (cisco, juniper) = table7_pair();
    let c = load(&cisco);
    let j = load(&juniper);
    let report = compare_routers(&c, &j, &CampionOptions::default());
    println!("Reproducing Table 7 — ACL rules debugging\n");
    for d in &report.acl_diffs {
        println!("{d}");
    }
    assert!(!report.acl_diffs.is_empty(), "the pair must differ");
    let d = &report.acl_diffs[0];
    assert_eq!(d.action1, "REJECT");
    assert_eq!(d.action2, "ACCEPT");
    assert!(d.text1.contains("deny ip 9.140.0.0 0.0.1.255 any"));
    assert!(d.text2.contains("term permit_whitelist"));
    println!(
        "[shape check] Cisco line and Juniper term localized; source range\n\
         9.140.0.0/23 identified ✓"
    );
}
