//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **StructuralDiff vs SemanticDiff for static routes** (§3.3's claim:
//!    the structural check is as precise and cheaper for stylized
//!    components) — compare runtime and findings when static routes are
//!    checked structurally versus encoded as route policies and checked
//!    semantically.
//! 2. **Regex-language refinement on/off** — without the DFA containment
//!    constraints between unknown-regex atoms, each regex difference of the
//!    university border pair produces a spurious reverse-direction
//!    difference.
//! 3. **ddNF reuse vs per-difference rebuild** — the localization DAG is
//!    shared across a pair's differences; rebuilding it per difference is
//!    the naive alternative.

use std::time::Instant;

use campion_bench::{load, print_rows};
use campion_cfg::Span;
use campion_core::headerloc::{self, RangeDag};
use campion_core::{acl_paths, policy_paths, semantic_diff, structural};
use campion_gen::{capirca_acl_pair, university_border_pair};
use campion_ir::{
    Clause, Match, PrefixMatcher, PrefixMatcherEntry, RoutePolicy, RouterIr, Terminal,
};
use campion_net::PrefixRange;
use campion_symbolic::{PacketSpace, RouteSpace};

/// Encode a router's static routes as a route policy (one accepting clause
/// per distinct next hop) so SemanticDiff can compare them — the ablation's
/// "semantic" arm.
fn statics_as_policy(r: &RouterIr) -> RoutePolicy {
    let mut clauses = Vec::new();
    for (i, s) in r.static_routes.iter().enumerate() {
        clauses.push(Clause {
            label: format!("static {}", s.prefix),
            matches: vec![Match::Prefix(vec![PrefixMatcher {
                name: String::new(),
                entries: vec![PrefixMatcherEntry {
                    permit: true,
                    range: PrefixRange::exact(s.prefix),
                    span: s.span,
                }],
            }])],
            // Distinguish next hops via distinct local-pref values: a
            // difference in next hop becomes an effect difference.
            sets: vec![campion_ir::SetAction::LocalPref(1000 + i as u32)],
            terminal: Terminal::Accept,
            span: s.span,
        });
    }
    RoutePolicy {
        name: "statics".to_string(),
        clauses,
        default_terminal: Terminal::Reject,
        span: Span::line(1),
    }
}

fn main() {
    println!("Ablation studies (see DESIGN.md)\n");
    let mut rows = Vec::new();

    // ---- 1. structural vs semantic static-route checking -------------
    let a = load(
        &(0..200)
            .map(|i| {
                format!(
                    "ip route 10.{}.{}.0 255.255.255.0 10.99.0.{}\n",
                    i / 250,
                    i % 250,
                    i % 200 + 1
                )
            })
            .collect::<String>(),
    );
    let mut b_text: String = (0..200)
        .map(|i| {
            format!(
                "ip route 10.{}.{}.0 255.255.255.0 10.99.0.{}\n",
                i / 250,
                i % 250,
                i % 200 + 1
            )
        })
        .collect();
    b_text.push_str("ip route 172.16.0.0 255.255.0.0 10.99.0.7\n"); // one extra
    let b = load(&b_text);

    let t0 = Instant::now();
    let structural_findings = structural::diff_static_routes(&a, &b).len();
    let t_structural = t0.elapsed();

    let t0 = Instant::now();
    let p1 = statics_as_policy(&a);
    let p2 = statics_as_policy(&b);
    let mut space = RouteSpace::for_policies(&[&p1, &p2]);
    let u = space.universe();
    let paths1 = policy_paths(&mut space, &p1, u);
    let paths2 = policy_paths(&mut space, &p2, u);
    let semantic_findings = semantic_diff(&mut space.manager, &paths1, &paths2).len();
    let t_semantic = t0.elapsed();

    rows.push(vec![
        "static routes: structural".into(),
        format!("{} finding(s)", structural_findings),
        format!("{:.3} ms", t_structural.as_secs_f64() * 1e3),
    ]);
    rows.push(vec![
        "static routes: semantic".into(),
        format!("{} finding(s)", semantic_findings),
        format!("{:.3} ms", t_semantic.as_secs_f64() * 1e3),
    ]);

    // ---- 2. regex refinement on/off -----------------------------------
    let (bc, bj) = university_border_pair();
    let rc = load(&bc);
    let rj = load(&bj);
    for (label, refined) in [
        ("regex refinement ON", true),
        ("regex refinement OFF", false),
    ] {
        let t0 = Instant::now();
        let mut total = 0;
        for name in ["EXPORT3", "EXPORT4"] {
            let p1 = &rc.policies[name];
            let p2 = &rj.policies[name];
            let mut space = RouteSpace::for_policies(&[p1, p2]);
            let u = if refined {
                space.universe()
            } else {
                space.universe_without_regex_refinement()
            };
            let paths1 = policy_paths(&mut space, p1, u);
            let paths2 = policy_paths(&mut space, p2, u);
            total += semantic_diff(&mut space.manager, &paths1, &paths2).len();
        }
        rows.push(vec![
            label.into(),
            format!("{total} outputted difference(s) for Export 3+4"),
            format!("{:.3} ms", t0.elapsed().as_secs_f64() * 1e3),
        ]);
    }

    // ---- 3. ddNF reuse vs rebuild --------------------------------------
    let (cc, cj) = capirca_acl_pair(500, 10, 0xAB1A7E);
    let ra = load(&cc);
    let rb = load(&cj);
    let a1 = &ra.acls["ACL-GEN"];
    let a2 = &rb.acls["ACL-GEN"];
    let mut space = PacketSpace::new();
    let u = space.universe();
    let paths1 = acl_paths(&mut space, a1, u);
    let paths2 = acl_paths(&mut space, a2, u);
    let diffs = semantic_diff(&mut space.manager, &paths1, &paths2);
    let mut ranges = Vec::new();
    for acl in [a1, a2] {
        for rule in &acl.rules {
            for w in &rule.dst {
                if let Some(p) = w.as_prefix() {
                    ranges.push(PrefixRange::or_longer(p));
                }
            }
        }
    }
    let t0 = Instant::now();
    let dag = RangeDag::build(&mut headerloc::DstAddrSpace(&mut space), &ranges);
    for d in &diffs {
        let proj = space.project_to_dst(d.input);
        let _ =
            headerloc::header_localize_with(&mut headerloc::DstAddrSpace(&mut space), proj, &dag);
    }
    let t_reuse = t0.elapsed();
    let t0 = Instant::now();
    for d in &diffs {
        let proj = space.project_to_dst(d.input);
        let _ = headerloc::header_localize(&mut headerloc::DstAddrSpace(&mut space), proj, &ranges);
    }
    let t_rebuild = t0.elapsed();
    rows.push(vec![
        format!("ddNF shared across {} diffs", diffs.len()),
        format!("{} range nodes", dag.len()),
        format!("{:.1} ms", t_reuse.as_secs_f64() * 1e3),
    ]);
    rows.push(vec![
        "ddNF rebuilt per diff".into(),
        format!("{} range nodes", dag.len()),
        format!("{:.1} ms", t_rebuild.as_secs_f64() * 1e3),
    ]);

    print_rows("Ablations", &["configuration", "result", "time"], &rows);

    assert_eq!(structural_findings, 1);
    assert!(semantic_findings >= 1);
    assert!(
        t_structural < t_semantic,
        "structural must be cheaper ({t_structural:?} vs {t_semantic:?})"
    );
    println!(
        "\n[check] structural static check: same error surfaced, {}x faster ✓",
        (t_semantic.as_secs_f64() / t_structural.as_secs_f64()).round()
    );
}
