//! Table 3: the Minesweeper-style baseline on Figure 1 — one concrete
//! counterexample, no localization.

use campion_bench::load;
use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};

fn main() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    let cex = campion_minesweeper::check_route_maps(&c.policies["POL"], &j.policies["POL"])
        .expect("Figure 1 policies differ");
    println!("Reproducing Table 3 — Minesweeper baseline on Figure 1\n");
    println!("{cex}\n");
    println!(
        "[shape check] single counterexample; no second difference, no prefix\n\
         ranges, no configuration text — the deficiencies §2.1 describes ✓"
    );
}
