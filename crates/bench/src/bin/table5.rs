//! Table 5: the Minesweeper-style baseline on the §2.2 static routes —
//! one packet, no prefix, no admin distance, no text.

use campion_bench::load;
use campion_cfg::samples::{STATIC_CISCO, STATIC_JUNIPER};

fn main() {
    let c = load(STATIC_CISCO);
    let j = load(STATIC_JUNIPER);
    let cex = campion_minesweeper::check_static_routes(&c, &j).expect("statics differ");
    println!("Reproducing Table 5 — Minesweeper baseline on static routes\n");
    println!("{cex}\n");
    assert_eq!(cex.dst_ip.to_string(), "10.1.1.2");
    println!(
        "[shape check] only a concrete dstIp and forwarding verdicts — the\n\
         operator must still find the static route by hand ✓"
    );
}
