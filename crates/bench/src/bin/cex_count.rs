//! The §2.1 counterexample-count experiment: how many iterated Minesweeper
//! counterexamples are needed before at least one lands in each prefix
//! range relevant to Difference 1 — and how the count grows when the Cisco
//! config's `le 32` is changed to `le 31`.
//!
//! The paper measured 7 and 27 with Z3's model enumeration. Absolute
//! counts depend on solver internals; the reproduction checks the *shape*:
//! strictly more than one counterexample is needed, and the `le 31`
//! variant needs strictly more than the original.

use campion_bench::{load, print_rows};
use campion_cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
use campion_minesweeper::{cexs_until_coverage, CoverageTarget};

fn main() {
    println!("Reproducing the §2.1 iterated-counterexample experiment\n");
    let j = load(FIGURE1_JUNIPER);

    // Difference 1's relevant regions (Table 2a: included minus excluded).
    let targets = [
        CoverageTarget::range("10.9.0.0/16:17-32".parse().expect("valid")),
        CoverageTarget::range("10.100.0.0/16:17-32".parse().expect("valid")),
    ];

    let c = load(FIGURE1_CISCO);
    let original = cexs_until_coverage(&c.policies["POL"], &j.policies["POL"], &targets, 10_000)
        .expect("coverage reachable");

    // The paper's one-token change: `le 32` → `le 31` on the second line.
    let variant_text = FIGURE1_CISCO.replacen(
        "ip prefix-list NETS permit 10.100.0.0/16 le 32",
        "ip prefix-list NETS permit 10.100.0.0/16 le 31",
        1,
    );
    let cv = load(&variant_text);
    let variant_targets = [
        CoverageTarget::range("10.9.0.0/16:17-32".parse().expect("valid")),
        CoverageTarget::range("10.100.0.0/16:17-31".parse().expect("valid")),
    ];
    let variant = cexs_until_coverage(
        &cv.policies["POL"],
        &j.policies["POL"],
        &variant_targets,
        10_000,
    )
    .expect("coverage reachable");

    let rows = vec![
        vec!["original (le 32)".into(), original.to_string(), "7".into()],
        vec!["variant (le 31)".into(), variant.to_string(), "27".into()],
    ];
    print_rows(
        "Counterexamples until Difference-1 coverage",
        &["configuration", "measured", "paper (Z3)"],
        &rows,
    );

    assert!(original > 1, "one counterexample never suffices");
    assert!(
        variant > original,
        "the le-31 variant must be strictly harder ({variant} vs {original})"
    );
    println!(
        "\n[shape check] >1 counterexample needed, and the one-token change\n\
         makes enumeration strictly harder (fragility) ✓"
    );
    println!(
        "\nCampion, by contrast, reports both differences with exhaustive\n\
         prefix ranges in a single run (see `table2`)."
    );
}
