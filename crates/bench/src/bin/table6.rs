//! Table 6: the three data-center scenarios — differences found per
//! component per scenario.

use campion_bench::{load, print_rows};
use campion_core::{compare_routers, CampionOptions};
use campion_gen::{scenario1, scenario2, scenario3};

fn main() {
    println!("Reproducing Table 6 — data-center network results");
    println!("(synthetic Clos-role pairs with the paper's injected bug classes)\n");

    // Scenario 1: redundant routers.
    let mut s1_bgp = 0;
    let mut s1_static = 0;
    for p in scenario1(8, 1001) {
        let report = compare_routers(
            &load(&p.cisco),
            &load(&p.juniper),
            &CampionOptions::default(),
        );
        s1_bgp += report.route_map_diffs.len();
        s1_static += report
            .structural
            .iter()
            .filter(|s| s.component == "Static Routes")
            .count();
    }

    // Scenario 2: router replacement (30 replacements as in §5.1).
    let mut s2_bgp = 0;
    for p in scenario2(30, 2002) {
        let report = compare_routers(
            &load(&p.cisco),
            &load(&p.juniper),
            &CampionOptions::default(),
        );
        s2_bgp += report.route_map_diffs.len();
    }

    // Scenario 3: gateway ACLs.
    let mut s3_acl = 0;
    for p in scenario3(5, 20, 3003) {
        let report = compare_routers(
            &load(&p.cisco),
            &load(&p.juniper),
            &CampionOptions::default(),
        );
        s3_acl += report.acl_diffs.len();
    }

    let rows = vec![
        vec![
            "Scenario 1".into(),
            "BGP".into(),
            "Semantic".into(),
            s1_bgp.to_string(),
            "5".into(),
        ],
        vec![
            "".into(),
            "Static Routes".into(),
            "Structural".into(),
            s1_static.to_string(),
            "2".into(),
        ],
        vec![
            "Scenario 2".into(),
            "BGP".into(),
            "Semantic".into(),
            s2_bgp.to_string(),
            "4".into(),
        ],
        vec![
            "Scenario 3".into(),
            "ACLs".into(),
            "Semantic".into(),
            s3_acl.to_string(),
            "3".into(),
        ],
    ];
    print_rows(
        "Table 6 — Data Center Network Results",
        &[
            "Scenario",
            "Component",
            "Check",
            "Differences (measured)",
            "Paper",
        ],
        &rows,
    );
    assert_eq!((s1_bgp, s1_static, s2_bgp, s3_acl), (5, 2, 4, 3));
    println!("\n[shape check] all four counts match the paper ✓");
}
