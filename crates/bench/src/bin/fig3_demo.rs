//! Figure 3: the ddNF / GetMatch worked example. Seven prefix ranges
//! A..G arranged as in the paper's DAG; the target set is
//! S = (B − D) ∪ (C − F) ∪ G, and GetMatch must report exactly
//! `{B − D, C − F, G}` after nested-difference removal.

use campion_core::headerloc::{header_localize, reencode};
use campion_net::PrefixRange;
use campion_symbolic::RouteSpace;

fn main() {
    println!("Reproducing Figure 3 — GetMatch over the ddNF DAG\n");
    let a = PrefixRange::universe();
    let b: PrefixRange = "10.0.0.0/8:8-32".parse().expect("valid");
    let c: PrefixRange = "20.0.0.0/8:8-32".parse().expect("valid");
    let d: PrefixRange = "10.1.0.0/16:16-32".parse().expect("valid");
    let e: PrefixRange = "10.2.0.0/16:16-32".parse().expect("valid");
    let f: PrefixRange = "20.1.0.0/16:16-32".parse().expect("valid");
    let g: PrefixRange = "20.1.1.0/24:24-32".parse().expect("valid");
    for (name, r) in [
        ("A (=U)", a),
        ("B", b),
        ("C", c),
        ("D", d),
        ("E", e),
        ("F", f),
        ("G", g),
    ] {
        println!("  {name:7} = {r}");
    }

    let dummy = campion_ir::RoutePolicy::permit_all("fig3");
    let mut space = RouteSpace::for_policies(&[&dummy]);
    let bb = space.prefix_range_bdd(&b);
    let db = space.prefix_range_bdd(&d);
    let cb = space.prefix_range_bdd(&c);
    let fb = space.prefix_range_bdd(&f);
    let gb = space.prefix_range_bdd(&g);
    let bd = space.manager.diff(bb, db);
    let cf = space.manager.diff(cb, fb);
    let mut s = space.manager.or(bd, cf);
    s = space.manager.or(s, gb);

    println!("\n  S = (B − D) ∪ (C − F) ∪ G");
    let loc = header_localize(&mut space, s, &[a, b, c, d, e, f, g]);
    println!("  GetMatch(S) = {loc}");
    assert!(loc.exact);
    let back = reencode(&mut space, &loc);
    assert_eq!(back, s, "re-encoding returns exactly S");
    assert_eq!(loc.terms.len(), 3);
    println!("\n[shape check] three terms, nested difference C − (F − G) unfolded ✓");
}
