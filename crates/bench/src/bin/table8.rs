//! Table 8: the university network results — outputted differences per
//! route-map pair (8a) and the structural findings (8b).

use campion_bench::{load, print_rows};
use campion_core::{compare_routers, CampionOptions};
use campion_gen::{university_border_pair, university_core_pair};

fn main() {
    println!("Reproducing Table 8 — university network results\n");
    let (cc, cj) = university_core_pair();
    let core = compare_routers(&load(&cc), &load(&cj), &CampionOptions::default());
    let (bc, bj) = university_border_pair();
    let border = compare_routers(&load(&bc), &load(&bj), &CampionOptions::default());

    let count = |r: &campion_core::CampionReport, name: &str| {
        r.route_map_diffs.iter().filter(|d| d.name1 == name).count()
    };
    let rows = vec![
        vec![
            "Core Routers".into(),
            "Export 1".into(),
            count(&core, "EXPORT1").to_string(),
            "5".into(),
        ],
        vec![
            "".into(),
            "Export 2".into(),
            count(&core, "EXPORT2").to_string(),
            "1".into(),
        ],
        vec![
            "Border Routers".into(),
            "Export 3".into(),
            count(&border, "EXPORT3").to_string(),
            "1".into(),
        ],
        vec![
            "".into(),
            "Export 4".into(),
            count(&border, "EXPORT4").to_string(),
            "1".into(),
        ],
        vec![
            "".into(),
            "Export 5".into(),
            count(&border, "EXPORT5").to_string(),
            "2".into(),
        ],
        vec![
            "".into(),
            "Import".into(),
            count(&border, "IMPORT").to_string(),
            "0".into(),
        ],
    ];
    print_rows(
        "Table 8(a) — SemanticDiff results on route maps",
        &["Router Pair", "Route Map", "Outputted (measured)", "Paper"],
        &rows,
    );

    // 8(b): structural classes on the core pair.
    let static_classes = {
        let mut attr = false;
        let mut presence = false;
        for s in core
            .structural
            .iter()
            .filter(|s| s.component == "Static Routes")
        {
            match s.side {
                campion_core::FindingSide::Both => attr = true,
                _ => presence = true,
            }
        }
        usize::from(attr) + usize::from(presence)
    };
    let bgp_classes = usize::from(
        core.structural
            .iter()
            .any(|s| s.key.contains("send-community")),
    );
    let rows = vec![
        vec![
            "Core Routers".into(),
            "Static Routes".into(),
            static_classes.to_string(),
            "2".into(),
        ],
        vec![
            "".into(),
            "BGP Properties".into(),
            bgp_classes.to_string(),
            "1".into(),
        ],
    ];
    print_rows(
        "Table 8(b) — StructuralDiff results (classes of errors)",
        &["Router Pair", "Component", "Classes (measured)", "Paper"],
        &rows,
    );

    assert_eq!(count(&core, "EXPORT1"), 5);
    assert_eq!(count(&core, "EXPORT2"), 1);
    assert_eq!(count(&border, "EXPORT3"), 1);
    assert_eq!(count(&border, "EXPORT4"), 1);
    assert_eq!(count(&border, "EXPORT5"), 2);
    assert_eq!(count(&border, "IMPORT"), 0);
    assert_eq!(static_classes, 2);
    assert_eq!(bgp_classes, 1);
    println!("\n[shape check] every Table 8 count matches the paper ✓");
}
