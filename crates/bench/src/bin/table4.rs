//! Table 4: Campion's structural static-route difference — full tuple and
//! exact configuration line.

use campion_bench::load;
use campion_cfg::samples::{STATIC_CISCO, STATIC_JUNIPER};
use campion_core::{compare_routers, CampionOptions};

fn main() {
    let c = load(STATIC_CISCO);
    let j = load(STATIC_JUNIPER);
    let report = compare_routers(&c, &j, &CampionOptions::default());
    println!("Reproducing Table 4 — Campion static-route StructuralDiff\n");
    for s in report
        .structural
        .iter()
        .filter(|s| s.component == "Static Routes")
    {
        println!("{s}");
        if let Some(span) = s.span1 {
            println!("  text: {}", c.snippet(span));
        }
        if let Some(span) = s.span2 {
            println!("  text: {}", j.snippet(span));
        }
        println!();
    }
    let cisco_only = report
        .structural
        .iter()
        .any(|s| s.key == "10.1.1.2/31" && s.value2 == "None");
    assert!(cisco_only, "the paper's 10.1.1.2/31 route must be flagged");
    println!("[shape check] prefix, next hop, admin distance and text all localized ✓");
}
