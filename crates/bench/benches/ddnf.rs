//! Microbench for the ddNF builder (§3.2): `RangeDag::build` over 10²–10⁴
//! input ranges, isolated from parsing and the diff engine.
//!
//! The builder closes the input set under intersection, deduplicates by
//! denoted set, and wires cover edges — since PR 6 all of that is decided
//! structurally on `(bits, len, lo-hi)` through a first-octet-bucketed
//! prefix trie, with the BDD encoded once per distinct node. This bench
//! watches exactly that path, so a regression here is a builder regression
//! and not a parser or SemanticDiff one.
//!
//! Inputs are generated with a fixed-seed LCG and squeezed into four first
//! octets so the closure produces real intersections instead of a forest
//! of disjoint blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use campion_core::{DstAddrSpace, RangeDag};
use campion_net::{Prefix, PrefixRange};
use campion_symbolic::PacketSpace;

/// `n` deterministic or-longer ranges over a crowded corner of the
/// address space (fixed-seed LCG; no `rand` dependency).
fn gen_ranges(n: usize) -> Vec<PrefixRange> {
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let len = 8 + ((x >> 59) % 17) as u8;
        let octet = 10 + ((x >> 32) & 0x3) as u32;
        let bits = (octet << 24) | (x as u32 & 0x00FF_FFFF);
        out.push(PrefixRange::or_longer(Prefix::new(bits.into(), len)));
    }
    out
}

fn ddnf_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddnf_build");
    group.sample_size(10);
    for size in [100usize, 1000, 10000] {
        let ranges = gen_ranges(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                // Fresh space per iteration: a shared manager would let the
                // second build ride the first one's unique table and measure
                // cache luck instead of the builder.
                let mut packets = PacketSpace::new();
                let dag = RangeDag::build(&mut DstAddrSpace(&mut packets), &ranges);
                let nodes = dag.len();
                dag.release(&mut packets.manager);
                std::hint::black_box(nodes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ddnf_build);
criterion_main!(benches);
