//! Criterion bench for the paper's end-to-end runtime claim: comparing a
//! router pair (parse → lower → all checks → present) takes seconds at
//! most (§5.1: "within five seconds for each pair"; §5.4: "total runtime
//! to compare the core and border pairs was 3 seconds").

use criterion::{criterion_group, criterion_main, Criterion};

use campion_bench::load;
use campion_cfg::parse_config;
use campion_core::{compare_routers, CampionOptions};
use campion_gen::{scenario1, university_border_pair, university_core_pair};
use campion_ir::lower;

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);

    let (cc, cj) = university_core_pair();
    group.bench_function("university_core_pair", |b| {
        b.iter(|| {
            let r1 = lower(&parse_config(&cc).expect("valid")).expect("lowerable");
            let r2 = lower(&parse_config(&cj).expect("valid")).expect("lowerable");
            let report = compare_routers(&r1, &r2, &CampionOptions::default());
            std::hint::black_box(report.total_differences())
        })
    });

    let (bc, bj) = university_border_pair();
    group.bench_function("university_border_pair", |b| {
        b.iter(|| {
            let r1 = lower(&parse_config(&bc).expect("valid")).expect("lowerable");
            let r2 = lower(&parse_config(&bj).expect("valid")).expect("lowerable");
            let report = compare_routers(&r1, &r2, &CampionOptions::default());
            std::hint::black_box(report.total_differences())
        })
    });

    // One representative data-center pair (diff only; parse cached).
    let pair = scenario1(8, 1001).into_iter().next().expect("pairs");
    let r1 = load(&pair.cisco);
    let r2 = load(&pair.juniper);
    group.bench_function("datacenter_tor_pair_diff_only", |b| {
        b.iter(|| {
            let report = compare_routers(&r1, &r2, &CampionOptions::default());
            std::hint::black_box(report.total_differences())
        })
    });
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
