//! Criterion bench for the §5.4 scaling claim: SemanticDiff runtime on
//! Capirca-like ACL pairs with 10 injected differences.
//!
//! The full 10 000-rule point lives in the `scalability` binary (criterion
//! iteration at that size would take minutes); here we sample the curve up
//! to 2 000 rules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use campion_bench::load;
use campion_core::{compare_routers, CampionOptions};
use campion_gen::capirca_acl_pair;

fn acl_semdiff(c: &mut Criterion) {
    let mut group = c.benchmark_group("acl_semdiff");
    group.sample_size(10);
    for size in [100usize, 500, 1000, 2000] {
        let (cisco, juniper) = capirca_acl_pair(size, 10.min(size / 2), 0xC0FFEE + size as u64);
        let rc = load(&cisco);
        let rj = load(&juniper);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let report = compare_routers(&rc, &rj, &CampionOptions::default());
                std::hint::black_box(report.acl_diffs.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, acl_semdiff);
criterion_main!(benches);
