//! Criterion bench for configuration parsing (§5.4 reports Batfish parse
//! time comparable to SemanticDiff at 10 000 rules; this measures our
//! front-end on the same generated inputs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use campion_cfg::parse_config;
use campion_gen::capirca_acl_pair;
use campion_ir::lower;

fn parse_and_lower(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    group.sample_size(10);
    for size in [100usize, 1000, 5000] {
        let (cisco, juniper) = capirca_acl_pair(size, 10.min(size / 2), 0xC0FFEE + size as u64);
        group.bench_with_input(BenchmarkId::new("cisco", size), &cisco, |b, text| {
            b.iter(|| {
                let r = lower(&parse_config(text).expect("valid")).expect("lowerable");
                std::hint::black_box(r.acls.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("juniper", size), &juniper, |b, text| {
            b.iter(|| {
                let r = lower(&parse_config(text).expect("valid")).expect("lowerable");
                std::hint::black_box(r.acls.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, parse_and_lower);
criterion_main!(benches);
