//! Fleet integration tests: store round-trips (property-based), the
//! committed v1 fixture (backwards compatibility), corruption handling,
//! and the end-to-end incrementality proof — both in-process against
//! [`campion_fleet::Daemon`] and over the real HTTP loop.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use campion_core::{compare_config_texts, report_json, CampionOptions};
use campion_fleet::store::{PairRecord, PairResources, PairStatus, RouterRecord, SnapshotRecord};
use campion_fleet::{api, gen, http, Daemon, FleetStore, SnapshotInput};
use campion_ir::hash::ComponentHashes;
use campion_trace::json::validate_chrome_trace;
use campion_trace::prom::validate_exposition;
use proptest::prelude::*;

/// Serializes the tests that ingest snapshots: the trace collector is
/// process-global, so once the flight-recorder test enables it, concurrent
/// ingests would drain each other's spans.
static TRACE_MUX: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn trace_guard() -> std::sync::MutexGuard<'static, ()> {
    TRACE_MUX.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh per-test scratch directory (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "campion-fleet-{tag}-{}-{:p}",
        std::process::id(),
        &tag
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../testdata/fleet/{name}"))
}

/// The canonical v1 snapshot record behind the committed fixture.
fn v1_fixture_record() -> SnapshotRecord {
    let mut routers = BTreeMap::new();
    routers.insert(
        "r00-cisco".to_string(),
        RouterRecord {
            text_hash: 0x0123_4567_89ab_cdef,
            components: ComponentHashes {
                policies: BTreeMap::from([("POL".to_string(), 0xdead_beef_dead_beef)]),
                acls: BTreeMap::from([("ACL-GEN".to_string(), 0xfeed_face_feed_face)]),
                structural: 0x0fed_cba9_8765_4321,
            },
        },
    );
    routers.insert(
        "r00-juniper".to_string(),
        RouterRecord {
            text_hash: 0xffff_ffff_ffff_fffe,
            components: ComponentHashes {
                policies: BTreeMap::new(),
                acls: BTreeMap::from([("ACL-GEN".to_string(), 0x1111_2222_3333_4444)]),
                structural: 0x5555_6666_7777_8888,
            },
        },
    );
    SnapshotRecord {
        seq: 3,
        name: "fixture \"v1\" snapshot".to_string(),
        ingested_unix: 1_754_000_000,
        routers,
        pairs: vec![
            PairRecord {
                router1: "r00-cisco".to_string(),
                router2: "r00-juniper".to_string(),
                pair_key: 0xa5a5_a5a5_5a5a_5a5a,
                status: PairStatus::Cached,
                computed_at: 1,
                changed: Vec::new(),
                equivalent: false,
                differences: 2,
                compute_ns: 0,
                resources: PairResources::default(),
                report_text: "Action difference\n  lines 1-2\n".to_string(),
                report_json: "{\"equivalent\": false}\n".to_string(),
            },
            PairRecord {
                router1: "r00-juniper".to_string(),
                router2: "r00-cisco".to_string(),
                pair_key: 0x0000_0000_0000_0001,
                status: PairStatus::Computed,
                computed_at: 3,
                changed: vec!["r00-cisco: structural".to_string()],
                equivalent: true,
                differences: 0,
                compute_ns: 123_456,
                resources: PairResources::default(),
                report_text: String::new(),
                report_json: String::new(),
            },
        ],
    }
}

/// The canonical v2 snapshot record behind the committed fixture: the v1
/// record plus non-default per-pair resource attribution.
fn v2_fixture_record() -> SnapshotRecord {
    let mut snap = v1_fixture_record();
    snap.name = "fixture \"v2\" snapshot".to_string();
    snap.pairs[1].resources = PairResources {
        wall_ns: 123_456,
        bdd_nodes: 4_096,
        peak_nodes: 10_240,
        post_gc_nodes: 2_048,
        gc_runs: 3,
        gc_pauses: 5,
        gc_pause_us: 700,
        gc_pause_max_us: 250,
        unique_lookups: 90_000,
        unique_hits: 81_000,
        apply_lookups: 40_000,
        apply_hits: 30_000,
        rule_cache_lookups: 600,
        rule_cache_hits: 450,
    };
    snap
}

/// Regeneration tool for the committed current-format fixture — only for
/// a deliberate format bump:
/// `cargo test -p campion-fleet -- --ignored regenerate`.
#[test]
#[ignore]
fn regenerate_v2_fixture() {
    let path = fixture_path("snap-v2.json");
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(&path, v2_fixture_record().encode()).expect("write fixture");
}

/// The backwards-compatibility gate: the committed v1 document (written
/// before per-pair resources existed) must stay decodable by every future
/// reader, bit-exactly, with resources defaulting to zero.
#[test]
fn committed_v1_fixture_decodes() {
    let text = std::fs::read_to_string(fixture_path("snap-v1.json")).expect("fixture present");
    let snap = SnapshotRecord::decode(&text).expect("v1 fixture must decode");
    assert_eq!(snap, v1_fixture_record());
    // Spot-check a full-width hash survived the hex-string encoding.
    assert_eq!(snap.routers["r00-juniper"].text_hash, 0xffff_ffff_ffff_fffe);
    assert_eq!(snap.pairs[1].resources, PairResources::default());
}

/// The committed v2 document round-trips, resources included.
#[test]
fn committed_v2_fixture_decodes() {
    let text = std::fs::read_to_string(fixture_path("snap-v2.json")).expect("fixture present");
    let snap = SnapshotRecord::decode(&text).expect("v2 fixture must decode");
    assert_eq!(snap, v2_fixture_record());
    assert_eq!(snap.pairs[1].resources.peak_nodes, 10_240);
}

#[test]
fn corrupted_documents_error_cleanly() {
    let good = v1_fixture_record().encode();
    let cases: Vec<(String, &str)> = vec![
        (good[..good.len() / 2].to_string(), "truncated"),
        ("not json at all".to_string(), "non-JSON"),
        ("{\"version\": 1}".to_string(), "missing format marker"),
        (
            good.replace("campion-fleet-snapshot", "other-format"),
            "wrong format marker",
        ),
        (
            good.replace("\"version\": 2", "\"version\": 99"),
            "future version",
        ),
        (
            good.replace("\"resources\"", "\"sprockets\""),
            "v2 without resources",
        ),
        (
            good.replace(
                "\"text_hash\": \"0123456789abcdef\"",
                "\"text_hash\": \"xyz\"",
            ),
            "malformed hash",
        ),
        (
            good.replace("\"routers\"", "\"sprockets\""),
            "missing routers",
        ),
    ];
    for (text, what) in cases {
        let r = SnapshotRecord::decode(&text);
        assert!(r.is_err(), "{what}: decode should fail");
    }
    // A future version must be named in the error, so operators know to
    // upgrade the reader rather than suspect corruption.
    let err = SnapshotRecord::decode(&good.replace("\"version\": 2", "\"version\": 99"))
        .expect_err("future version");
    assert!(err.contains("version 99"), "unhelpful error: {err}");
}

#[test]
fn store_load_of_corrupt_file_errors_cleanly() {
    let dir = scratch("corrupt");
    let store = FleetStore::open(&dir).expect("open");
    std::fs::write(dir.join("snap-000001.json"), "{\"truncated").expect("write");
    let err = store.load(1).expect_err("corrupt load must fail");
    assert!(
        err.contains("snap-000001.json"),
        "error names the file: {err}"
    );
    assert!(store.latest().is_err());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any snapshot record — arbitrary names, report bodies (newlines,
    /// quotes, multi-byte), and full-width 64-bit hashes — must round-trip
    /// bit-exactly through encode/decode.
    #[test]
    fn store_round_trip(
        name in "",
        seq in 1u64..1_000_000,
        routers in proptest::collection::vec(
            ("", 0u64..=u64::MAX, 0u64..=u64::MAX,
             proptest::collection::vec(("", 0u64..=u64::MAX), 0..3)),
            0..4),
        pairs in proptest::collection::vec(
            ("", "", 0u64..=u64::MAX, 0u64..1 << 50, proptest::collection::vec("", 0..3),
             ("", "")),
            0..4),
    ) {
        let mut snap = SnapshotRecord {
            seq,
            name,
            ingested_unix: seq * 7,
            routers: BTreeMap::new(),
            pairs: Vec::new(),
        };
        for (i, (rname, th, sh, pols)) in routers.into_iter().enumerate() {
            snap.routers.insert(
                format!("{rname}-{i}"), // disambiguate: map keys must be unique
                RouterRecord {
                    text_hash: th,
                    components: ComponentHashes {
                        policies: pols
                            .iter()
                            .enumerate()
                            .map(|(j, (p, h))| (format!("{p}-{j}"), *h))
                            .collect(),
                        acls: BTreeMap::new(),
                        structural: sh,
                    },
                },
            );
        }
        for (r1, r2, key, ns, changed, (text, json)) in pairs {
            // Resource counters are plain JSON numbers, so the encoder
            // bounds them below 2^53; derive full-range-but-bounded values.
            let bounded = |x: u64| x & ((1u64 << 50) - 1);
            snap.pairs.push(PairRecord {
                router1: r1,
                router2: r2,
                pair_key: key,
                status: if key % 2 == 0 { PairStatus::Computed } else { PairStatus::Cached },
                computed_at: seq,
                changed,
                equivalent: ns % 2 == 0,
                differences: ns % 17,
                compute_ns: ns,
                resources: PairResources {
                    wall_ns: ns,
                    bdd_nodes: bounded(key),
                    peak_nodes: bounded(key.rotate_left(13)),
                    post_gc_nodes: bounded(key.rotate_left(26)),
                    gc_runs: key % 11,
                    gc_pauses: key % 13,
                    gc_pause_us: bounded(ns.rotate_left(7)),
                    gc_pause_max_us: bounded(ns.rotate_left(17)),
                    unique_lookups: bounded(key.wrapping_mul(3)),
                    unique_hits: bounded(key.wrapping_mul(5)),
                    apply_lookups: bounded(key.wrapping_mul(7)),
                    apply_hits: bounded(key.wrapping_mul(11)),
                    rule_cache_lookups: bounded(key.wrapping_mul(13)),
                    rule_cache_hits: bounded(key.wrapping_mul(17)),
                },
                report_text: text,
                report_json: json,
            });
        }
        let decoded = SnapshotRecord::decode(&snap.encode()).expect("round trip");
        prop_assert_eq!(decoded, snap);
    }
}

/// The end-to-end incrementality proof, in process: ingest a fleet, then
/// the same fleet with one router perturbed — exactly the touched pair
/// recomputes, everything else is served from the store with provenance,
/// and every served report is byte-identical to a fresh one-shot compare.
#[test]
fn single_router_change_recomputes_only_touched_pair() {
    let _g = trace_guard();
    let dir = scratch("e2e");
    let opts = CampionOptions::default();
    let mut daemon = Daemon::open(&dir, opts.clone()).expect("open");

    let snap1 = gen::fleet_input("base", 4, 6, 1, 42, None);
    let s1 = daemon.ingest(&snap1).expect("ingest 1");
    assert_eq!((s1.seq, s1.pairs_computed, s1.pairs_cached), (1, 4, 0));
    assert_eq!(s1.routers_parsed, 8);

    let snap2 = gen::fleet_input("perturbed", 4, 6, 1, 42, Some(2));
    let s2 = daemon.ingest(&snap2).expect("ingest 2");
    assert_eq!((s2.seq, s2.pairs_computed, s2.pairs_cached), (2, 1, 3));
    // Only the changed router and its compare partner were parsed; the
    // other seven configs took the raw-text fast path.
    assert_eq!(s2.routers_parsed, 2);
    assert_eq!(s2.router_parses_skipped, 7);

    let latest = daemon.latest().expect("latest");
    for p in &latest.pairs {
        if p.router1 == "r02-cisco" {
            assert_eq!(p.status, PairStatus::Computed);
            assert_eq!(p.computed_at, 2);
            assert_eq!(p.changed, vec!["r02-cisco: structural".to_string()]);
        } else {
            assert_eq!(p.status, PairStatus::Cached, "{}", p.router1);
            assert_eq!(p.computed_at, 1, "{}", p.router1);
            assert!(p.changed.is_empty());
            assert_eq!(p.compute_ns, 0);
        }
        // Resource attribution rides along: the original compare's wall
        // time and BDD footprint survive even on cached pairs.
        assert!(p.resources.wall_ns > 0, "{}", p.router1);
        assert!(p.resources.peak_nodes > 0, "{}", p.router1);
        // Served or recomputed, the stored reports are byte-identical to
        // a fresh one-shot `campion compare` of the same two configs.
        let fresh = compare_config_texts(
            &snap2.configs[&p.router1],
            &snap2.configs[&p.router2],
            &opts,
        )
        .expect("fresh compare");
        assert_eq!(p.report_text, format!("{fresh}\n"), "{}", p.router1);
        assert_eq!(p.report_json, report_json(&fresh), "{}", p.router1);
    }

    // Counters accumulate across both ingests.
    let c = daemon.counters();
    assert_eq!(c.snapshots, 2);
    assert_eq!((c.pairs_computed, c.pairs_cached), (5, 3));

    // Restart: the daemon resumes from the store, and re-ingesting the
    // same snapshot computes nothing at all.
    drop(daemon);
    let mut daemon = Daemon::open(&dir, opts).expect("reopen");
    assert_eq!(daemon.latest().expect("resumed").seq, 2);
    let s3 = daemon.ingest(&snap2).expect("ingest 3");
    assert_eq!((s3.pairs_computed, s3.pairs_cached), (0, 4));
    assert_eq!(s3.routers_parsed, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The same proof over the wire: real listener, real HTTP requests, the
/// exact handler the daemon binary runs.
#[test]
fn http_api_round_trip() {
    let _g = trace_guard();
    let dir = scratch("http");
    let opts = CampionOptions::default();
    let mut daemon = Daemon::open(&dir, opts.clone()).expect("open");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        http::serve(&listener, |req| api::handle(&mut daemon, req)).expect("serve");
    });

    let snap1 = gen::fleet_input("base", 2, 5, 1, 7, None);
    let (status, body) =
        http::request(addr, "POST", "/api/v1/snapshot", Some(&snap1.to_json())).expect("post 1");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"pairs_computed\": 2"), "{body}");

    let snap2 = gen::fleet_input("perturbed", 2, 5, 1, 7, Some(0));
    let (status, body) =
        http::request(addr, "POST", "/api/v1/snapshot", Some(&snap2.to_json())).expect("post 2");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"pairs_computed\": 1"), "{body}");
    assert!(body.contains("\"pairs_cached\": 1"), "{body}");

    // Status + pairs reflect the second snapshot.
    let (_, status_body) = http::request(addr, "GET", "/api/v1/status", None).expect("status");
    assert!(status_body.contains("\"latest_seq\": 2"), "{status_body}");
    let (_, pairs_body) = http::request(addr, "GET", "/api/v1/pairs", None).expect("pairs");
    assert!(
        pairs_body.contains("\"status\": \"cached\""),
        "{pairs_body}"
    );
    assert!(pairs_body.contains("\"computed_at\": 1"), "{pairs_body}");

    // The text endpoint serves exactly what the one-shot CLI would print.
    let fresh = compare_config_texts(
        &snap2.configs["r00-cisco"],
        &snap2.configs["r00-juniper"],
        &opts,
    )
    .expect("fresh");
    let (status, text) =
        http::request(addr, "GET", "/api/v1/pair/r00-cisco/r00-juniper/text", None).expect("text");
    assert_eq!(status, 200);
    assert_eq!(text, format!("{fresh}\n"));
    let (status, json) = http::request(
        addr,
        "GET",
        "/api/v1/pair/r00-cisco/r00-juniper/report",
        None,
    )
    .expect("report");
    assert_eq!(status, 200);
    assert_eq!(json, report_json(&fresh));

    // The embedded pair summary carries the resource attribution.
    let (status, pair) =
        http::request(addr, "GET", "/api/v1/pair/r00-cisco/r00-juniper", None).expect("pair");
    assert_eq!(status, 200);
    assert!(pair.contains("\"resources\": {\"wall_ns\": "), "{pair}");

    // Unknown pair → clean 404; metrics expose the counters.
    let (status, _) = http::request(addr, "GET", "/api/v1/pair/x/y", None).expect("404");
    assert_eq!(status, 404);
    let (_, metrics) = http::request(addr, "GET", "/api/v1/metrics", None).expect("metrics");
    assert!(metrics.contains("\"pairs_cached\": 1"), "{metrics}");

    // The Prometheus exposition is linter-clean and carries at least one
    // histogram family plus the ingest counters.
    let (status, prom) = http::request(addr, "GET", "/metrics", None).expect("prom");
    assert_eq!(status, 200);
    let report = validate_exposition(&prom).unwrap_or_else(|e| panic!("{e}\n{prom}"));
    assert!(report.histograms >= 1, "{prom}");
    assert!(prom.contains("campion_fleet_snapshots_total 2"), "{prom}");
    assert!(
        prom.contains("campion_fleet_http_requests_total{code=\"404\"} 1"),
        "{prom}"
    );

    let (status, _) = http::request(addr, "POST", "/api/v1/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    server.join().expect("join");
    std::fs::remove_dir_all(&dir).ok();
}

/// The store lock file: a second daemon over the same directory fails with
/// an error naming the owning PID; a clean shutdown releases the lock.
#[test]
fn store_lock_rejects_second_daemon() {
    let dir = scratch("lock");
    let first = Daemon::open(&dir, CampionOptions::default()).expect("open");
    let err = Daemon::open(&dir, CampionOptions::default()).expect_err("locked");
    assert!(err.contains("locked"), "{err}");
    assert!(err.contains(&std::process::id().to_string()), "{err}");
    drop(first);
    let _again = Daemon::open(&dir, CampionOptions::default()).expect("lock released");
    std::fs::remove_dir_all(&dir).ok();
}

/// The flight recorder end to end: with the SLO forced to zero every
/// computed pair is "slow", so the ingest leaves a Chrome-trace artifact
/// behind, listed and served by the flight endpoints and valid under the
/// same checker CI runs on `--trace` output.
#[test]
fn slo_breach_produces_valid_flight_dump() {
    let _g = trace_guard();
    let dir = scratch("flight");
    campion_trace::enable();
    let mut daemon = Daemon::open(&dir, CampionOptions::default()).expect("open");
    daemon.set_slo_ms(0);
    let snap = gen::fleet_input("slow", 2, 5, 1, 11, None);
    let summary = daemon.ingest(&snap).expect("ingest");
    assert!(summary.pairs_computed > 0);

    let (inv, _) = api_get(&mut daemon, "/api/v1/flight");
    assert!(inv.contains("\"available\": [1]"), "{inv}");
    let (dump, status) = api_get(&mut daemon, "/api/v1/flight/1");
    assert_eq!(status, 200, "{dump}");
    let report = validate_chrome_trace(&dump).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.spans > 0);
    assert!(dump.contains("fleet.ingest"), "ingest span in the dump");

    // No artifact for a never-ingested sequence number.
    let (_, status) = api_get(&mut daemon, "/api/v1/flight/7");
    assert_eq!(status, 404);

    // A healthy SLO writes nothing on the next ingest.
    daemon.set_slo_ms(3_600_000);
    let snap2 = gen::fleet_input("fast", 2, 5, 1, 11, Some(0));
    daemon.ingest(&snap2).expect("ingest 2");
    let (inv, _) = api_get(&mut daemon, "/api/v1/flight");
    assert!(inv.contains("\"available\": [1]"), "{inv}");
    campion_trace::disable();
    std::fs::remove_dir_all(&dir).ok();
}

/// One in-process GET against the API router; returns (body, status).
fn api_get(daemon: &mut Daemon, path: &str) -> (String, u16) {
    let (resp, shutdown) = api::handle(
        daemon,
        &http::Request {
            method: "GET".to_string(),
            path: path.to_string(),
            body: Vec::new(),
        },
    );
    assert!(!shutdown);
    (
        String::from_utf8(resp.body).expect("utf8 body"),
        resp.status,
    )
}

/// Malformed ingest bodies are rejected with 400 and do not advance the
/// snapshot sequence.
#[test]
fn bad_snapshot_body_is_rejected() {
    let _g = trace_guard();
    let dir = scratch("bad");
    let mut daemon = Daemon::open(&dir, CampionOptions::default()).expect("open");
    for body in [
        "not json",
        "{\"configs\": {}, \"pairs\": []}",
        "{\"configs\": {\"a\": \"hostname a\\n\"}, \"pairs\": [[\"a\", \"ghost\"]]}",
    ] {
        let (resp, shutdown) = api::handle(
            &mut daemon,
            &http::Request {
                method: "POST".to_string(),
                path: "/api/v1/snapshot".to_string(),
                body: body.as_bytes().to_vec(),
            },
        );
        assert_eq!(resp.status, 400, "{body}");
        assert!(!shutdown);
    }
    assert!(daemon.latest().is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot directory round-trips through the CLI-side loader into the
/// exact JSON the daemon ingests.
#[test]
fn written_fleet_directory_matches_input() {
    let dir = scratch("gen");
    gen::write_fleet(&dir, 2, 5, 1, 9, Some(1)).expect("write");
    let loaded = SnapshotInput::from_dir(&dir).expect("load");
    let mut expect = gen::fleet_input("x", 2, 5, 1, 9, Some(1));
    expect.name = loaded.name.clone(); // directory name wins
    assert_eq!(loaded, expect);
    std::fs::remove_dir_all(&dir).ok();
}
