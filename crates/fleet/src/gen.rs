//! Synthetic fleet generation for tests, benches, and the CI smoke job.
//!
//! A fleet of `pairs` router pairs, each pair a Cisco/Juniper rendering of
//! the same generated capirca-style policy (via
//! [`campion_gen::capirca_acl_pair`]). With `perturb = Some(i)`, pair
//! `i`'s Cisco config gains one extra static route — a single-router,
//! single-component change, the canonical incremental-recompute probe.

use std::collections::BTreeMap;
use std::path::Path;

use crate::snapshot::{SnapshotInput, MANIFEST};

/// The line appended to a perturbed router's configuration: one static
/// route, touching only the structural component.
pub const PERTURB_LINE: &str = "ip route 203.0.113.0 255.255.255.0 10.0.0.1\n";

/// Build a synthetic fleet snapshot in memory.
pub fn fleet_input(
    name: &str,
    pairs: usize,
    rules: usize,
    diffs: usize,
    seed: u64,
    perturb: Option<usize>,
) -> SnapshotInput {
    let mut configs = BTreeMap::new();
    let mut manifest = Vec::new();
    for i in 0..pairs {
        let (mut cisco, juniper) =
            campion_gen::capirca_acl_pair(rules, diffs, seed.wrapping_add(i as u64));
        if perturb == Some(i) {
            cisco.push_str(PERTURB_LINE);
        }
        let (c_name, j_name) = (format!("r{i:02}-cisco"), format!("r{i:02}-juniper"));
        configs.insert(c_name.clone(), cisco);
        configs.insert(j_name.clone(), juniper);
        manifest.push((c_name, j_name));
    }
    SnapshotInput {
        name: name.to_string(),
        configs,
        pairs: manifest,
    }
}

/// Write a synthetic fleet snapshot as a directory (`*.cfg` files plus
/// `pairs.manifest`), the shape `campion-fleet ingest <dir>` consumes.
pub fn write_fleet(
    dir: &Path,
    pairs: usize,
    rules: usize,
    diffs: usize,
    seed: u64,
    perturb: Option<usize>,
) -> Result<(), String> {
    let input = fleet_input("fleet", pairs, rules, diffs, seed, perturb);
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for (name, text) in &input.configs {
        let path = dir.join(format!("{name}.cfg"));
        std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let manifest: String = input
        .pairs
        .iter()
        .map(|(a, b)| format!("{a} {b}\n"))
        .collect();
    let path = dir.join(MANIFEST);
    std::fs::write(&path, manifest).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbation_touches_exactly_one_router() {
        let base = fleet_input("a", 3, 6, 1, 7, None);
        let perturbed = fleet_input("b", 3, 6, 1, 7, Some(1));
        let changed: Vec<&String> = base
            .configs
            .iter()
            .filter(|(k, v)| perturbed.configs[k.as_str()] != **v)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(changed, vec!["r01-cisco"]);
        assert_eq!(base.pairs, perturbed.pairs);
    }
}
