//! campion-fleet: Campion as a service (DESIGN.md §2h).
//!
//! A long-running daemon (`campion-fleetd`) ingests whole network
//! snapshots — a directory of router configurations plus a pair manifest
//! naming the routers expected to be behaviorally equivalent — runs every
//! pair through the parse → lower → compare pipeline on the work-stealing
//! pool, and persists the results in a versioned on-disk store.
//!
//! Ingest is *incremental*: each router's lowered VI model is
//! content-hashed per component ([`campion_ir::hash`]), so on snapshot
//! N+1 only the pairs whose relevant components changed are recomputed;
//! every other pair is answered from the store with provenance
//! (`computed @ snapshot k`). A zero-dependency HTTP/1.1 JSON API serves
//! snapshot ingestion, per-pair reports (byte-identical to the one-shot
//! `campion compare` CLI), and daemon metrics; `campion-fleet` is the
//! matching CLI client.

pub mod api;
pub mod daemon;
pub mod flight;
pub mod gen;
pub mod http;
pub mod snapshot;
pub mod store;

pub use daemon::{Counters, Daemon, IngestSummary};
pub use flight::FlightRecorder;
pub use snapshot::SnapshotInput;
pub use store::{
    FleetStore, PairRecord, PairResources, PairStatus, RouterRecord, SnapshotRecord, FORMAT_VERSION,
};
