//! The fleet daemon core: snapshot ingest with incremental recompute.
//!
//! Ingest is a pure function of the previous snapshot's hash records and
//! the new snapshot's texts:
//!
//! 1. **Text fast path** — a router whose raw-text hash is unchanged
//!    keeps its component hashes verbatim and is not re-parsed.
//! 2. **Pair keying** — each pair's key combines both routers' component
//!    digests; an unchanged key means the compare would read byte-for-byte
//!    identical inputs, so the stored result is served with provenance
//!    (`computed @ snapshot k`) instead of recomputed.
//! 3. **Recompute fan-out** — pairs whose key moved are compared on the
//!    work-stealing pool ([`campion_core::steal_indexed`]), one pair per
//!    task, reusing the one-shot `compare_routers` driver so a served
//!    report is byte-identical to a fresh `campion compare`.
//!
//! The daemon owns a [`FleetStore`]; every ingest persists one snapshot
//! document before the summary is returned, so a crash never loses an
//! acknowledged snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Instant, SystemTime};

use campion_core::{compare_routers, report_json, CampionOptions};
use campion_ir::hash::{fnv1a64, fnv1a64_combine, hash_router, text_hash, ComponentHashes};
use campion_ir::RouterIr;
use campion_trace::hist::Histogram;
use campion_trace::json::escape;
use campion_trace::log::{self, Value};
use campion_trace::prom::Exposition;
use campion_trace::Trace;

use crate::flight::FlightRecorder;
use crate::snapshot::SnapshotInput;
use crate::store::{
    FleetStore, PairRecord, PairResources, PairStatus, RouterRecord, SnapshotRecord,
};

/// Monotonic daemon-lifetime counters, exposed by `GET /api/v1/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Snapshots ingested.
    pub snapshots: u64,
    /// Pairs scheduled across all ingests.
    pub pairs_total: u64,
    /// Pairs actually run through the compare pipeline.
    pub pairs_computed: u64,
    /// Pairs served from the store (unchanged pair key).
    pub pairs_cached: u64,
    /// Routers parsed and lowered.
    pub routers_parsed: u64,
    /// Router parses skipped via the raw-text fast path.
    pub router_parses_skipped: u64,
}

/// What one ingest did, returned to the API caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestSummary {
    /// Sequence number assigned to the snapshot.
    pub seq: u64,
    /// Snapshot label.
    pub name: String,
    /// Pairs in the manifest.
    pub pairs_total: usize,
    /// Pairs recomputed this ingest.
    pub pairs_computed: usize,
    /// Pairs served from the store.
    pub pairs_cached: usize,
    /// Routers re-parsed (text changed, or needed for a recompute).
    pub routers_parsed: usize,
    /// Router parses skipped via the text fast path.
    pub router_parses_skipped: usize,
    /// Wall nanoseconds for the whole ingest.
    pub elapsed_ns: u64,
}

impl IngestSummary {
    /// JSON body of a successful `POST /api/v1/snapshot`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\": {}, \"name\": \"{}\", \"pairs_total\": {}, \"pairs_computed\": {}, \
             \"pairs_cached\": {}, \"routers_parsed\": {}, \"router_parses_skipped\": {}, \
             \"elapsed_ns\": {}}}\n",
            self.seq,
            escape(&self.name),
            self.pairs_total,
            self.pairs_computed,
            self.pairs_cached,
            self.routers_parsed,
            self.router_parses_skipped,
            self.elapsed_ns,
        )
    }
}

/// Aggregated per-phase timing, merged across every drained trace. The
/// histogram feeds the Prometheus exposition and the p50/p90/p99 columns
/// of `metrics_json`.
#[derive(Debug, Clone, Default)]
struct PhaseTotal {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    hist: Histogram,
}

/// The daemon: a store, the latest snapshot's records, counters, latency
/// histograms, and the flight recorder.
#[derive(Debug)]
pub struct Daemon {
    store: FleetStore,
    latest: Option<SnapshotRecord>,
    counters: Counters,
    opts: CampionOptions,
    phase_totals: BTreeMap<&'static str, PhaseTotal>,
    ingest_hist: Histogram,
    compute_hist: Histogram,
    http_hist: Histogram,
    http_codes: BTreeMap<u16, u64>,
    flight: FlightRecorder,
}

impl Daemon {
    /// Open a daemon over a store directory, resuming from the newest
    /// stored snapshot if one exists.
    pub fn open(store_dir: &Path, opts: CampionOptions) -> Result<Self, String> {
        let store = FleetStore::open(store_dir)?;
        let latest = store.latest()?;
        Ok(Daemon {
            store,
            latest,
            counters: Counters::default(),
            opts,
            phase_totals: BTreeMap::new(),
            ingest_hist: Histogram::new(),
            compute_hist: Histogram::new(),
            http_hist: Histogram::new(),
            http_codes: BTreeMap::new(),
            flight: FlightRecorder::new(store_dir),
        })
    }

    /// Override the flight recorder's latency SLO (milliseconds).
    pub fn set_slo_ms(&mut self, ms: u64) {
        self.flight.set_slo_ms(ms);
    }

    /// Record one served HTTP request for the exposition (status code
    /// counter plus the request-latency histogram).
    pub fn record_http(&mut self, status: u16, dur_ns: u64) {
        *self.http_codes.entry(status).or_insert(0) += 1;
        self.http_hist.record(dur_ns);
    }

    /// The stored flight artifact for one sequence number, if any.
    pub fn flight_dump(&self, seq: u64) -> Option<String> {
        self.flight.read(seq)
    }

    /// JSON body of `GET /api/v1/flight`: the dumps available on disk.
    pub fn flight_json(&self) -> String {
        let seqs: Vec<String> = self.flight.list().iter().map(u64::to_string).collect();
        format!(
            "{{\"slo_ms\": {}, \"dumps\": {}, \"available\": [{}]}}\n",
            self.flight.slo_ns() / 1_000_000,
            self.flight.dumps(),
            seqs.join(", "),
        )
    }

    /// The latest ingested snapshot, if any.
    pub fn latest(&self) -> Option<&SnapshotRecord> {
        self.latest.as_ref()
    }

    /// Daemon-lifetime counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Ingest one snapshot: hash, decide, recompute the changed pairs,
    /// persist, and return the summary. Either way the ingest's trace is
    /// drained into the daemon's aggregates, then offered to the flight
    /// recorder: an SLO-busting pair or an ingest error dumps it.
    pub fn ingest(&mut self, input: &SnapshotInput) -> Result<IngestSummary, String> {
        let result = self.ingest_inner(input);
        let trace = self.absorb_trace();
        match &result {
            Ok(summary) => {
                self.ingest_hist.record(summary.elapsed_ns);
                let slo = self.flight.slo_ns();
                let slow: Vec<(String, u64)> = self
                    .latest
                    .as_ref()
                    .map(|s| {
                        s.pairs
                            .iter()
                            .filter(|p| p.status == PairStatus::Computed && p.compute_ns >= slo)
                            .map(|p| (format!("{} vs {}", p.router1, p.router2), p.compute_ns))
                            .collect()
                    })
                    .unwrap_or_default();
                if let Some(path) = self.flight.maybe_dump(summary.seq, &trace, &slow, None) {
                    log::warn(
                        "fleet.flight.dump",
                        &[
                            ("seq", Value::U64(summary.seq)),
                            ("slow_pairs", Value::U64(slow.len() as u64)),
                            ("path", Value::Str(&path.display().to_string())),
                        ],
                    );
                }
                log::info(
                    "fleet.ingest",
                    &[
                        ("seq", Value::U64(summary.seq)),
                        ("pairs_total", Value::U64(summary.pairs_total as u64)),
                        ("pairs_computed", Value::U64(summary.pairs_computed as u64)),
                        ("pairs_cached", Value::U64(summary.pairs_cached as u64)),
                        ("elapsed_us", Value::U64(summary.elapsed_ns / 1_000)),
                    ],
                );
            }
            Err(e) => {
                // Key the error dump by the sequence number the snapshot
                // would have received.
                let seq = self.latest.as_ref().map_or(1, |s| s.seq + 1);
                let path = self.flight.maybe_dump(seq, &trace, &[], Some(e));
                log::error(
                    "fleet.ingest.error",
                    &[
                        ("seq", Value::U64(seq)),
                        ("error", Value::Str(e)),
                        ("flight", Value::Bool(path.is_some())),
                    ],
                );
            }
        }
        result
    }

    fn ingest_inner(&mut self, input: &SnapshotInput) -> Result<IngestSummary, String> {
        let t0 = Instant::now();
        let _ingest_span = campion_trace::span("fleet.ingest");
        input.validate()?;
        let seq = self.latest.as_ref().map_or(1, |s| s.seq + 1);

        // Phase 1: per-router text fast path. Routers whose raw text is
        // unchanged reuse their component hashes without parsing; the rest
        // parse now. `irs` holds lowered models for later compares.
        let mut irs: BTreeMap<String, RouterIr> = BTreeMap::new();
        let mut routers: BTreeMap<String, RouterRecord> = BTreeMap::new();
        let mut parses_skipped = 0usize;
        for (name, text) in &input.configs {
            let th = text_hash(text);
            let prev = self
                .latest
                .as_ref()
                .and_then(|s| s.routers.get(name))
                .filter(|r| r.text_hash == th);
            let components = match prev {
                Some(prev) => {
                    parses_skipped += 1;
                    prev.components.clone()
                }
                None => {
                    let ir = parse_one(name, text)?;
                    let c = hash_router(&ir);
                    irs.insert(name.clone(), ir);
                    c
                }
            };
            routers.insert(
                name.clone(),
                RouterRecord {
                    text_hash: th,
                    components,
                },
            );
        }

        // Phase 2: pair keying. Unchanged keys are served from the store.
        let mut pairs: Vec<PairRecord> = Vec::with_capacity(input.pairs.len());
        let mut compute: Vec<usize> = Vec::new();
        for (a, b) in &input.pairs {
            let key = pair_key(&routers[a].components, &routers[b].components);
            let prev = self.latest.as_ref().and_then(|s| s.find_pair(a, b));
            match prev.filter(|p| p.pair_key == key) {
                Some(p) => {
                    pairs.push(PairRecord {
                        status: PairStatus::Cached,
                        changed: Vec::new(),
                        compute_ns: 0,
                        ..p.clone()
                    });
                }
                None => {
                    let changed = match prev {
                        Some(_) => changed_components(&routers, self.latest.as_ref(), a, b),
                        None => Vec::new(),
                    };
                    compute.push(pairs.len());
                    pairs.push(PairRecord {
                        router1: a.clone(),
                        router2: b.clone(),
                        pair_key: key,
                        status: PairStatus::Computed,
                        computed_at: seq,
                        changed,
                        equivalent: false,
                        differences: 0,
                        compute_ns: 0,
                        resources: PairResources::default(),
                        report_text: String::new(),
                        report_json: String::new(),
                    });
                }
            }
        }

        // Phase 3: parse-on-demand. A text-unchanged router still needs
        // its lowered model if its partner changed and the pair recomputes.
        for &i in &compute {
            for name in [&pairs[i].router1, &pairs[i].router2] {
                if !irs.contains_key(name.as_str()) {
                    irs.insert(
                        name.clone(),
                        parse_one(name, &input.configs[name.as_str()])?,
                    );
                }
            }
        }
        let routers_parsed = irs.len();

        // Phase 4: fan the recomputes over the work-stealing pool. Each
        // pair runs the one-shot driver single-threaded; parallelism comes
        // from pair-level stealing, so reports stay byte-identical.
        let per_pair_opts = if compute.len() > 1 {
            CampionOptions {
                jobs: 1,
                ..self.opts.clone()
            }
        } else {
            self.opts.clone()
        };
        let workers = self.opts.effective_jobs().min(compute.len()).max(1);
        let results = campion_core::steal_indexed(
            vec![(); workers],
            compute.len(),
            |_| {},
            |_, k| {
                let _span = campion_trace::span("fleet.compare");
                let p = &pairs[compute[k]];
                let t = Instant::now();
                let report = compare_routers(&irs[&p.router1], &irs[&p.router2], &per_pair_opts);
                (report, t.elapsed().as_nanos() as u64)
            },
        );
        for (k, (report, ns)) in results.into_iter().enumerate() {
            let p = &mut pairs[compute[k]];
            let s = &report.bdd_stats;
            p.equivalent = report.is_equivalent();
            p.differences = report.total_differences() as u64;
            p.compute_ns = ns;
            p.resources = PairResources {
                wall_ns: ns,
                bdd_nodes: s.nodes,
                peak_nodes: s.peak_nodes,
                post_gc_nodes: s.post_gc_nodes,
                gc_runs: s.gc_runs,
                gc_pauses: s.gc_pauses,
                gc_pause_us: s.gc_pause_us,
                gc_pause_max_us: s.gc_pause_max_us,
                unique_lookups: s.unique_lookups,
                unique_hits: s.unique_hits,
                apply_lookups: s.apply_lookups,
                apply_hits: s.apply_hits,
                rule_cache_lookups: s.rule_cache_lookups,
                rule_cache_hits: s.rule_cache_hits,
            };
            self.compute_hist.record(ns);
            log::debug(
                "fleet.pair.computed",
                &[
                    ("router1", Value::Str(&p.router1)),
                    ("router2", Value::Str(&p.router2)),
                    ("differences", Value::U64(p.differences)),
                    ("wall_us", Value::U64(ns / 1_000)),
                    ("peak_nodes", Value::U64(s.peak_nodes)),
                ],
            );
            // The CLI prints the report with a trailing newline (println);
            // store exactly those bytes so `/text` is byte-identical.
            p.report_text = format!("{report}\n");
            p.report_json = report_json(&report);
        }

        // Phase 5: persist, then publish.
        let snap = SnapshotRecord {
            seq,
            name: input.name.clone(),
            ingested_unix: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            routers,
            pairs,
        };
        self.store.save(&snap)?;
        let summary = IngestSummary {
            seq,
            name: snap.name.clone(),
            pairs_total: snap.pairs.len(),
            pairs_computed: compute.len(),
            pairs_cached: snap.pairs.len() - compute.len(),
            routers_parsed,
            router_parses_skipped: parses_skipped,
            elapsed_ns: t0.elapsed().as_nanos() as u64,
        };
        self.counters.snapshots += 1;
        self.counters.pairs_total += summary.pairs_total as u64;
        self.counters.pairs_computed += summary.pairs_computed as u64;
        self.counters.pairs_cached += summary.pairs_cached as u64;
        self.counters.routers_parsed += summary.routers_parsed as u64;
        self.counters.router_parses_skipped += summary.router_parses_skipped as u64;
        self.latest = Some(snap);
        Ok(summary)
    }

    /// Fold any drained trace into the daemon's per-phase totals and hand
    /// it back for the flight recorder to keep or drop.
    fn absorb_trace(&mut self) -> Trace {
        if !campion_trace::is_enabled() {
            return Trace::default();
        }
        campion_trace::flush();
        let trace = campion_trace::drain();
        for stat in trace.phase_stats() {
            let t = self.phase_totals.entry(stat.name).or_default();
            t.count += stat.count;
            t.total_ns += stat.total_ns;
            t.max_ns = t.max_ns.max(stat.max_ns);
            t.hist.merge(&stat.hist);
        }
        trace
    }

    /// JSON body of `GET /api/v1/status`.
    pub fn status_json(&self) -> String {
        let (seq, name, routers, pairs) = match &self.latest {
            Some(s) => (
                s.seq.to_string(),
                format!("\"{}\"", escape(&s.name)),
                s.routers.len(),
                s.pairs.len(),
            ),
            None => ("null".to_string(), "null".to_string(), 0, 0),
        };
        format!(
            "{{\"latest_seq\": {seq}, \"latest_name\": {name}, \"routers\": {routers}, \
             \"pairs\": {pairs}, \"stored_snapshots\": {}}}\n",
            self.store.seqs().map(|s| s.len()).unwrap_or(0),
        )
    }

    /// JSON body of `GET /api/v1/pairs`: every pair's status, one line of
    /// provenance each, reports omitted.
    pub fn pairs_json(&self) -> String {
        let mut o = String::from("{\"pairs\": [");
        if let Some(s) = &self.latest {
            let rows: Vec<String> = s.pairs.iter().map(pair_summary_json).collect();
            o.push_str(&rows.join(", "));
        }
        o.push_str("]}\n");
        o
    }

    /// JSON body of `GET /api/v1/pair/{a}/{b}`: summary plus the full
    /// structured report, embedded verbatim.
    pub fn pair_json(&self, r1: &str, r2: &str) -> Option<String> {
        let p = self.latest.as_ref()?.find_pair(r1, r2)?;
        let mut o = pair_summary_json(p);
        o.truncate(o.len() - 1); // re-open the summary object
        let _ = writeln!(o, ", \"report\": {}}}", p.report_json.trim_end());
        Some(o)
    }

    /// The stored structured report (`GET /api/v1/pair/{a}/{b}/report`) —
    /// byte-identical to `campion compare --format json`.
    pub fn pair_report_json(&self, r1: &str, r2: &str) -> Option<&str> {
        Some(&self.latest.as_ref()?.find_pair(r1, r2)?.report_json)
    }

    /// The stored text report (`GET /api/v1/pair/{a}/{b}/text`) —
    /// byte-identical to `campion compare`.
    pub fn pair_report_text(&self, r1: &str, r2: &str) -> Option<&str> {
        Some(&self.latest.as_ref()?.find_pair(r1, r2)?.report_text)
    }

    /// JSON body of `GET /api/v1/metrics`: lifetime counters plus the
    /// aggregated campion-trace per-phase statistics.
    pub fn metrics_json(&self) -> String {
        let c = &self.counters;
        let mut o = format!(
            "{{\"counters\": {{\"snapshots\": {}, \"pairs_total\": {}, \"pairs_computed\": {}, \
             \"pairs_cached\": {}, \"routers_parsed\": {}, \"router_parses_skipped\": {}}}, \
             \"phases\": [",
            c.snapshots,
            c.pairs_total,
            c.pairs_computed,
            c.pairs_cached,
            c.routers_parsed,
            c.router_parses_skipped,
        );
        let rows: Vec<String> = self
            .phase_totals
            .iter()
            .map(|(name, t)| {
                format!(
                    "{{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \
                     \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                    escape(name),
                    t.count,
                    t.total_ns,
                    t.hist.quantile(0.50),
                    t.hist.quantile(0.90),
                    t.hist.quantile(0.99),
                    t.max_ns,
                )
            })
            .collect();
        o.push_str(&rows.join(", "));
        o.push_str("]}\n");
        o
    }

    /// The Prometheus text exposition (format 0.0.4) served at
    /// `GET /metrics`: lifetime counters, latest-snapshot gauges, and the
    /// latency histograms (ingest, per-pair compute, HTTP, per phase), all
    /// in seconds. The output passes [`campion_trace::prom`]'s linter —
    /// CI scrapes it and runs `promcheck`.
    pub fn prometheus(&self) -> String {
        let mut e = Exposition::new();
        let c = &self.counters;
        e.counter(
            "campion_fleet_snapshots_total",
            "Snapshots ingested over the daemon's lifetime.",
            c.snapshots,
        );
        e.counter(
            "campion_fleet_pairs_total",
            "Pairs scheduled across all ingests.",
            c.pairs_total,
        );
        e.counter(
            "campion_fleet_pairs_computed_total",
            "Pairs run through the compare pipeline.",
            c.pairs_computed,
        );
        e.counter(
            "campion_fleet_pairs_cached_total",
            "Pairs served from the store (unchanged pair key).",
            c.pairs_cached,
        );
        e.counter(
            "campion_fleet_routers_parsed_total",
            "Routers parsed and lowered.",
            c.routers_parsed,
        );
        e.counter(
            "campion_fleet_router_parses_skipped_total",
            "Router parses skipped via the raw-text fast path.",
            c.router_parses_skipped,
        );
        e.counter(
            "campion_fleet_flight_dumps_total",
            "Flight-recorder artifacts written (SLO breaches and errors).",
            self.flight.dumps(),
        );
        if !self.http_codes.is_empty() {
            let codes: Vec<String> = self.http_codes.keys().map(u16::to_string).collect();
            let labels: Vec<[(&str, &str); 1]> =
                codes.iter().map(|c| [("code", c.as_str())]).collect();
            let series: Vec<(&[(&str, &str)], u64)> = labels
                .iter()
                .zip(self.http_codes.values())
                .map(|(l, n)| (l.as_slice(), *n))
                .collect();
            e.counter_vec(
                "campion_fleet_http_requests_total",
                "HTTP requests served, by status code.",
                &series,
            );
        }
        let (seq, routers, pairs) = match &self.latest {
            Some(s) => (s.seq, s.routers.len(), s.pairs.len()),
            None => (0, 0, 0),
        };
        e.gauge(
            "campion_fleet_latest_snapshot_seq",
            "Sequence number of the newest ingested snapshot (0 when none).",
            seq as f64,
        );
        e.gauge(
            "campion_fleet_routers",
            "Routers in the latest snapshot.",
            routers as f64,
        );
        e.gauge(
            "campion_fleet_pairs",
            "Pairs in the latest snapshot.",
            pairs as f64,
        );
        e.gauge(
            "campion_fleet_peak_bdd_nodes",
            "Largest per-pair peak BDD node count in the latest snapshot.",
            self.latest
                .as_ref()
                .and_then(|s| s.pairs.iter().map(|p| p.resources.peak_nodes).max())
                .unwrap_or(0) as f64,
        );
        e.histogram(
            "campion_fleet_ingest_duration_seconds",
            "Wall time of whole snapshot ingests.",
            &self.ingest_hist,
            1e-9,
        );
        e.histogram(
            "campion_fleet_pair_compute_duration_seconds",
            "Wall time of individual pair compares.",
            &self.compute_hist,
            1e-9,
        );
        e.histogram(
            "campion_fleet_http_request_duration_seconds",
            "Wall time of served HTTP requests.",
            &self.http_hist,
            1e-9,
        );
        if !self.phase_totals.is_empty() {
            let series: Vec<(Vec<(&str, &str)>, &Histogram)> = self
                .phase_totals
                .iter()
                .map(|(name, t)| (vec![("phase", *name)], &t.hist))
                .collect();
            let series: Vec<(&[(&str, &str)], &Histogram)> = series
                .iter()
                .map(|(labels, h)| (labels.as_slice(), *h))
                .collect();
            e.histogram_vec(
                "campion_fleet_phase_duration_seconds",
                "Span durations per campion-trace phase.",
                &series,
                1e-9,
            );
        }
        e.finish()
    }
}

/// Parse and lower one router's configuration text.
fn parse_one(name: &str, text: &str) -> Result<RouterIr, String> {
    let _span = campion_trace::span("fleet.parse");
    let cfg = campion_cfg::parse_config(text).map_err(|e| format!("router {name:?}: {e}"))?;
    campion_ir::lower(&cfg).map_err(|e| format!("router {name:?}: {e}"))
}

/// The order-sensitive content key of one pair.
pub fn pair_key(c1: &ComponentHashes, c2: &ComponentHashes) -> u64 {
    fnv1a64_combine(
        fnv1a64_combine(fnv1a64(b"pair.v1"), c1.digest()),
        c2.digest(),
    )
}

/// The `"router: component"` provenance lines for a recomputed pair.
fn changed_components(
    routers: &BTreeMap<String, RouterRecord>,
    prev: Option<&SnapshotRecord>,
    r1: &str,
    r2: &str,
) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(prev) = prev {
        for name in [r1, r2] {
            if let (Some(now), Some(old)) = (routers.get(name), prev.routers.get(name)) {
                out.extend(
                    now.components
                        .changed_components(&old.components)
                        .into_iter()
                        .map(|c| format!("{name}: {c}")),
                );
            } else if !prev.routers.contains_key(name) {
                out.push(format!("{name}: new router"));
            }
        }
    }
    out
}

/// One pair as a JSON object, without the (large) report bodies.
fn pair_summary_json(p: &PairRecord) -> String {
    let changed: Vec<String> = p
        .changed
        .iter()
        .map(|c| format!("\"{}\"", escape(c)))
        .collect();
    format!(
        "{{\"router1\": \"{}\", \"router2\": \"{}\", \"status\": \"{}\", \
         \"computed_at\": {}, \"changed\": [{}], \"equivalent\": {}, \
         \"differences\": {}, \"compute_ns\": {}, \"resources\": {}}}",
        escape(&p.router1),
        escape(&p.router2),
        match p.status {
            PairStatus::Computed => "computed",
            PairStatus::Cached => "cached",
        },
        p.computed_at,
        changed.join(", "),
        p.equivalent,
        p.differences,
        p.compute_ns,
        p.resources.encode(),
    )
}
