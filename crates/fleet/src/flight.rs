//! The flight recorder: always-on, near-zero-cost crash/latency forensics.
//!
//! `campion-fleetd` runs with tracing enabled permanently; each ingest's
//! spans are drained into the daemon's aggregates either way, so the only
//! extra cost here is the *decision* of whether to keep them. When an
//! ingest stays healthy the drained trace is dropped and nothing is
//! written. When a computed pair blows the latency SLO — or the ingest
//! errors outright — the recorder persists the whole ingest's trace as a
//! Chrome trace-event artifact (`flight-<seq>.json`, loadable in
//! Perfetto, checkable with `tracecheck`) next to the snapshot store, so
//! the evidence of *what the daemon was doing* survives even if the
//! process is gone by the time an operator looks.
//!
//! Dumps are bounded two ways: at most [`RETENTION`] artifacts are kept
//! (oldest pruned first), and a single artifact carries at most
//! [`MAX_DUMP_EVENTS`] events — oversized traces shed their deepest spans
//! first and are rebuilt as a balanced begin/end stream, so a capped dump
//! still validates.

use std::fs;
use std::path::{Path, PathBuf};

use campion_trace::{Event, Phase, SpanRecord, Trace};

/// Default latency SLO, milliseconds: a computed pair slower than this
/// triggers a dump (`campion-fleetd --slo-ms` overrides).
pub const DEFAULT_SLO_MS: u64 = 60_000;

/// Flight artifacts kept on disk; beyond this the oldest is pruned.
pub const RETENTION: usize = 8;

/// Upper bound on Chrome trace events in one artifact.
pub const MAX_DUMP_EVENTS: usize = 20_000;

/// The recorder: a directory, an SLO, and a lifetime dump counter.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    slo_ns: u64,
    dumps: u64,
}

impl FlightRecorder {
    /// A recorder writing into `dir` (the snapshot store directory; flight
    /// artifacts use a distinct `flight-` prefix) with the default SLO.
    pub fn new(dir: &Path) -> FlightRecorder {
        FlightRecorder {
            dir: dir.to_path_buf(),
            slo_ns: DEFAULT_SLO_MS.saturating_mul(1_000_000),
            dumps: 0,
        }
    }

    /// Override the latency SLO (milliseconds). `0` dumps every ingest that
    /// computed at least one pair — the forced-dump mode CI uses.
    pub fn set_slo_ms(&mut self, ms: u64) {
        self.slo_ns = ms.saturating_mul(1_000_000);
    }

    /// The SLO in nanoseconds, for comparing against pair wall times.
    pub fn slo_ns(&self) -> u64 {
        self.slo_ns
    }

    /// Artifacts written over the daemon's lifetime.
    pub fn dumps(&self) -> u64 {
        self.dumps
    }

    fn path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("flight-{seq:06}.json"))
    }

    /// Keep or drop one ingest's drained trace. `slow` names the computed
    /// pairs whose wall time exceeded the SLO; `error` is set when the
    /// ingest failed (keyed by the sequence number it would have gotten).
    /// Returns the artifact path when a dump was written.
    pub fn maybe_dump(
        &mut self,
        seq: u64,
        trace: &Trace,
        slow: &[(String, u64)],
        error: Option<&str>,
    ) -> Option<PathBuf> {
        if (slow.is_empty() && error.is_none()) || trace.is_empty() {
            return None;
        }
        let path = self.path(seq);
        fs::write(&path, bounded_chrome_json(trace)).ok()?;
        self.dumps += 1;
        self.prune();
        Some(path)
    }

    /// Sequence numbers with an artifact on disk, ascending.
    pub fn list(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(seq) = name
                .to_str()
                .and_then(|n| n.strip_prefix("flight-"))
                .and_then(|n| n.strip_suffix(".json"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            out.push(seq);
        }
        out.sort_unstable();
        out
    }

    /// The stored artifact for one sequence number, if any.
    pub fn read(&self, seq: u64) -> Option<String> {
        fs::read_to_string(self.path(seq)).ok()
    }

    fn prune(&self) {
        let seqs = self.list();
        if seqs.len() > RETENTION {
            for &seq in &seqs[..seqs.len() - RETENTION] {
                let _ = fs::remove_file(self.path(seq));
            }
        }
    }
}

/// The trace as Chrome trace-event JSON, bounded to [`MAX_DUMP_EVENTS`].
/// Oversized traces shed their deepest spans first, then the latest-starting
/// ones, and are rebuilt as a balanced begin/end stream per track.
fn bounded_chrome_json(trace: &Trace) -> String {
    if trace.events.len() <= MAX_DUMP_EVENTS {
        return trace.chrome_json();
    }
    let budget = MAX_DUMP_EVENTS / 2; // each span costs one B and one E
    let spans = trace.spans();
    let mut depth_cap = spans.iter().map(|s| s.depth).max().unwrap_or(0);
    while depth_cap > 0 && spans.iter().filter(|s| s.depth < depth_cap).count() >= budget {
        depth_cap -= 1;
    }
    let mut kept: Vec<&SpanRecord> = spans.iter().filter(|s| s.depth <= depth_cap).collect();
    // Ancestors start no later than their descendants, so a start-ordered
    // prefix never keeps a child while dropping its parent.
    kept.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.depth.cmp(&b.depth)));
    kept.truncate(budget);
    rebuild_balanced(&kept).chrome_json()
}

/// A span still awaiting its `End` event: name, end time, counters.
type OpenSpan = (&'static str, u64, Vec<(&'static str, i64)>);

/// Rebuild a per-track balanced event stream from complete spans: begins in
/// start order, each end emitted once every span it encloses has ended.
fn rebuild_balanced(kept: &[&SpanRecord]) -> Trace {
    let mut tracks: Vec<u32> = kept.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut events: Vec<Event> = Vec::new();
    for t in tracks {
        let mut spans: Vec<&&SpanRecord> = kept.iter().filter(|s| s.track == t).collect();
        spans.sort_by(|a, b| {
            a.start_ns
                .cmp(&b.start_ns)
                .then(a.depth.cmp(&b.depth))
                .then(b.end_ns.cmp(&a.end_ns))
        });
        let mut open: Vec<OpenSpan> = Vec::new();
        let close = |open: &mut Vec<OpenSpan>, events: &mut Vec<Event>| {
            let (name, end_ns, counters) = open.pop().expect("caller checked non-empty");
            events.push(Event {
                track: t,
                name,
                phase: Phase::End,
                t_ns: end_ns,
                counters,
            });
        };
        for s in spans {
            while open.last().is_some_and(|&(_, end, _)| end <= s.start_ns) {
                close(&mut open, &mut events);
            }
            events.push(Event {
                track: t,
                name: s.name,
                phase: Phase::Begin,
                t_ns: s.start_ns,
                counters: Vec::new(),
            });
            open.push((s.name, s.end_ns, s.counters.clone()));
        }
        while !open.is_empty() {
            close(&mut open, &mut events);
        }
    }
    Trace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use campion_trace::json::validate_chrome_trace;

    fn span(track: u32, name: &'static str, depth: u32, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            track,
            name,
            depth,
            start_ns: start,
            end_ns: end,
            counters: Vec::new(),
        }
    }

    #[test]
    fn rebuild_balances_nested_and_sequential_spans() {
        let spans = [
            span(0, "outer", 0, 0, 100),
            span(0, "inner", 1, 10, 40),
            span(0, "inner", 1, 50, 90),
            span(1, "other", 0, 5, 25),
        ];
        let refs: Vec<&SpanRecord> = spans.iter().collect();
        let trace = rebuild_balanced(&refs);
        let report = validate_chrome_trace(&trace.chrome_json()).expect("balanced");
        assert_eq!(report.spans, 4);
    }

    #[test]
    fn oversized_trace_dumps_are_capped_and_valid() {
        let mut events = Vec::new();
        for i in 0..(MAX_DUMP_EVENTS as u64) {
            events.push(Event {
                track: 0,
                name: "fleet.compare",
                phase: Phase::Begin,
                t_ns: 2 * i,
                counters: Vec::new(),
            });
            events.push(Event {
                track: 0,
                name: "fleet.compare",
                phase: Phase::End,
                t_ns: 2 * i + 1,
                counters: Vec::new(),
            });
        }
        let trace = Trace { events };
        let json = bounded_chrome_json(&trace);
        let report = validate_chrome_trace(&json).expect("valid chrome trace");
        assert!(report.spans <= MAX_DUMP_EVENTS / 2);
    }

    #[test]
    fn recorder_dumps_prunes_and_serves() {
        let dir = std::env::temp_dir().join(format!("campion-flight-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let mut rec = FlightRecorder::new(&dir);
        rec.set_slo_ms(0);
        let trace = Trace {
            events: vec![
                Event {
                    track: 0,
                    name: "fleet.ingest",
                    phase: Phase::Begin,
                    t_ns: 0,
                    counters: Vec::new(),
                },
                Event {
                    track: 0,
                    name: "fleet.ingest",
                    phase: Phase::End,
                    t_ns: 10,
                    counters: Vec::new(),
                },
            ],
        };
        // Healthy ingest: nothing written.
        assert!(rec.maybe_dump(1, &trace, &[], None).is_none());
        for seq in 1..=(RETENTION as u64 + 3) {
            let slow = vec![("a vs b".to_string(), 123u64)];
            assert!(rec.maybe_dump(seq, &trace, &slow, None).is_some());
        }
        let seqs = rec.list();
        assert_eq!(seqs.len(), RETENTION);
        assert_eq!(*seqs.first().expect("non-empty"), 4);
        let body = rec.read(*seqs.last().expect("non-empty")).expect("stored");
        validate_chrome_trace(&body).expect("valid dump");
        assert!(rec.read(1).is_none(), "pruned dump is gone");
        assert_eq!(rec.dumps(), RETENTION as u64 + 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
