//! campion-fleet: the CLI client for `campion-fleetd`.
//!
//! Wraps the daemon's HTTP endpoints; `report --text` prints the stored
//! text report byte-identically to a fresh `campion compare` of the same
//! pair.

use std::path::Path;
use std::process::ExitCode;

use campion_fleet::{gen, http, SnapshotInput};

const USAGE: &str = "\
usage: campion-fleet [--addr <host:port>] <command> [args]

Commands:
  ingest <dir>            POST the snapshot directory (*.cfg + pairs.manifest)
  status                  print the latest-snapshot summary
  pairs                   print every pair's status and provenance
  report <r1> <r2>        print a pair's structured JSON report
  report <r1> <r2> --text print a pair's text report (byte-identical to
                          `campion compare <r1.cfg> <r2.cfg>`)
  metrics                 print daemon counters and per-phase trace stats
  shutdown                stop the daemon
  gen-fleet <dir> <pairs> <rules> <diffs> <seed> [--perturb I]
                          write a synthetic fleet snapshot directory
                          (local; does not contact the daemon)

Options:
  --addr <hp>             daemon address   [default: 127.0.0.1:8180]
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("campion-fleet: {msg}");
    eprint!("{USAGE}");
    ExitCode::FAILURE
}

/// Issue a request and print the body; non-200 statuses go to stderr.
fn call(addr: &str, method: &str, path: &str, body: Option<&str>) -> ExitCode {
    match http::request(addr, method, path, body) {
        Ok((200, body)) => {
            print!("{body}");
            ExitCode::SUCCESS
        }
        Ok((status, body)) => {
            eprint!("campion-fleet: HTTP {status}: {body}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("campion-fleet: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8180".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return fail("--addr needs a host:port"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => rest.push(arg),
        }
    }
    let rest: Vec<&str> = rest.iter().map(String::as_str).collect();
    match rest.as_slice() {
        ["ingest", dir] => match SnapshotInput::from_dir(Path::new(dir)) {
            Ok(input) => call(&addr, "POST", "/api/v1/snapshot", Some(&input.to_json())),
            Err(e) => fail(&e),
        },
        ["status"] => call(&addr, "GET", "/api/v1/status", None),
        ["pairs"] => call(&addr, "GET", "/api/v1/pairs", None),
        ["metrics"] => call(&addr, "GET", "/api/v1/metrics", None),
        ["shutdown"] => call(&addr, "POST", "/api/v1/shutdown", None),
        ["report", r1, r2] => call(
            &addr,
            "GET",
            &format!("/api/v1/pair/{r1}/{r2}/report"),
            None,
        ),
        ["report", r1, r2, "--text"] => {
            call(&addr, "GET", &format!("/api/v1/pair/{r1}/{r2}/text"), None)
        }
        ["gen-fleet", dir, pairs, rules, diffs, seed, perturb @ ..] => {
            let (Ok(pairs), Ok(rules), Ok(diffs), Ok(seed)) = (
                pairs.parse::<usize>(),
                rules.parse::<usize>(),
                diffs.parse::<usize>(),
                seed.parse::<u64>(),
            ) else {
                return fail("gen-fleet needs numeric <pairs> <rules> <diffs> <seed>");
            };
            let perturb = match perturb {
                [] => None,
                ["--perturb", i] => match i.parse::<usize>() {
                    Ok(i) => Some(i),
                    Err(_) => return fail("--perturb needs a pair index"),
                },
                _ => return fail("unknown gen-fleet arguments"),
            };
            match gen::write_fleet(Path::new(dir), pairs, rules, diffs, seed, perturb) {
                Ok(()) => {
                    println!("wrote {pairs}-pair fleet to {dir}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        [] => fail("no command"),
        other => fail(&format!("unknown command {:?}", other.join(" "))),
    }
}
