//! campion-fleetd: the fleet snapshot-diffing daemon.
//!
//! Serves the zero-dependency HTTP/1.1 JSON API (see `campion_fleet::api`)
//! over a sequential accept loop, with incremental recompute backed by a
//! versioned on-disk store.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use campion_core::{CampionOptions, GcMode};
use campion_fleet::{api, http, Daemon};

const USAGE: &str = "\
usage: campion-fleetd --store <dir> [--addr <host:port>] [--jobs N] [--gc auto|off|aggressive]

Options:
  --store <dir>      snapshot store directory (created if missing; required)
  --addr <hp>        listen address            [default: 127.0.0.1:8180]
  --jobs N           diff worker threads, 0 = one per hardware thread
  --gc MODE          BDD garbage collection: auto, off, aggressive
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("campion-fleetd: {msg}");
    eprint!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:8180".to_string();
    let mut opts = CampionOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => match args.next() {
                Some(v) => store = Some(PathBuf::from(v)),
                None => return fail("--store needs a directory"),
            },
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return fail("--addr needs a host:port"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.jobs = v,
                None => return fail("--jobs needs a number"),
            },
            "--gc" => match args.next().as_deref() {
                Some("auto") => opts.gc = GcMode::Auto,
                Some("off") => opts.gc = GcMode::Off,
                Some("aggressive") => opts.gc = GcMode::Aggressive,
                _ => return fail("--gc needs auto, off, or aggressive"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(store) = store else {
        return fail("--store is required");
    };

    campion_trace::enable();
    let mut daemon = match Daemon::open(&store, opts) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => return fail(&format!("bind {addr}: {e}")),
    };
    // The bound address matters when the caller asked for port 0.
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "campion-fleetd listening on http://{bound} (store: {}, resumed at seq {})",
        store.display(),
        daemon.latest().map_or(0, |s| s.seq),
    );
    if let Err(e) = http::serve(&listener, |req| api::handle(&mut daemon, req)) {
        eprintln!("campion-fleetd: serve: {e}");
        return ExitCode::FAILURE;
    }
    println!("campion-fleetd: shutdown requested, exiting");
    ExitCode::SUCCESS
}
