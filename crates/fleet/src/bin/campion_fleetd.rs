//! campion-fleetd: the fleet snapshot-diffing daemon.
//!
//! Serves the zero-dependency HTTP/1.1 JSON API (see `campion_fleet::api`)
//! over a sequential accept loop, with incremental recompute backed by a
//! versioned on-disk store. Observability is always on: tracing feeds the
//! Prometheus exposition at `GET /metrics` and the flight recorder, and
//! structured JSON logs go to stderr (or a file via `--log`).

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use campion_core::{CampionOptions, GcMode};
use campion_fleet::{api, flight, http, Daemon};
use campion_trace::log::{self, Level, Value};

const USAGE: &str = "\
usage: campion-fleetd --store <dir> [--addr <host:port>] [--jobs N] [--gc auto|off|aggressive]
                      [--slo-ms N] [--log <file|->] [--log-level debug|info|warn|error]

Options:
  --store <dir>      snapshot store directory (created if missing; required)
  --addr <hp>        listen address            [default: 127.0.0.1:8180]
  --jobs N           diff worker threads, 0 = one per hardware thread
  --gc MODE          BDD garbage collection: auto, off, aggressive
  --slo-ms N         per-pair latency SLO; a slower computed pair dumps a
                     flight-recorder artifact  [default: 60000; 0 = always]
  --log <file|->     structured JSON log destination: a file path, or - for
                     stderr                    [default: -]
  --log-level LVL    minimum level to emit     [default: info]
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("campion-fleetd: {msg}");
    eprint!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut store: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:8180".to_string();
    let mut opts = CampionOptions::default();
    let mut slo_ms = flight::DEFAULT_SLO_MS;
    let mut log_dest = "-".to_string();
    let mut log_level = Level::Info;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => match args.next() {
                Some(v) => store = Some(PathBuf::from(v)),
                None => return fail("--store needs a directory"),
            },
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return fail("--addr needs a host:port"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.jobs = v,
                None => return fail("--jobs needs a number"),
            },
            "--gc" => match args.next().as_deref() {
                Some("auto") => opts.gc = GcMode::Auto,
                Some("off") => opts.gc = GcMode::Off,
                Some("aggressive") => opts.gc = GcMode::Aggressive,
                _ => return fail("--gc needs auto, off, or aggressive"),
            },
            "--slo-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => slo_ms = v,
                None => return fail("--slo-ms needs a number of milliseconds"),
            },
            "--log" => match args.next() {
                Some(v) => log_dest = v,
                None => return fail("--log needs a file path or -"),
            },
            "--log-level" => match args.next().as_deref().and_then(Level::parse) {
                Some(v) => log_level = v,
                None => return fail("--log-level needs debug, info, warn, or error"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(store) = store else {
        return fail("--store is required");
    };

    campion_trace::enable();
    if log_dest == "-" {
        log::init_stderr(log_level);
    } else if let Err(e) = log::init_file(log_level, std::path::Path::new(&log_dest)) {
        return fail(&format!("open log file {log_dest}: {e}"));
    }
    let mut daemon = match Daemon::open(&store, opts) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    daemon.set_slo_ms(slo_ms);
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => return fail(&format!("bind {addr}: {e}")),
    };
    // The bound address matters when the caller asked for port 0.
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "campion-fleetd listening on http://{bound} (store: {}, resumed at seq {})",
        store.display(),
        daemon.latest().map_or(0, |s| s.seq),
    );
    log::info(
        "fleetd.start",
        &[
            ("addr", Value::Str(&bound)),
            ("store", Value::Str(&store.display().to_string())),
            ("slo_ms", Value::U64(slo_ms)),
            (
                "resumed_seq",
                Value::U64(daemon.latest().map_or(0, |s| s.seq)),
            ),
        ],
    );
    if let Err(e) = http::serve(&listener, |req| api::handle(&mut daemon, req)) {
        eprintln!("campion-fleetd: serve: {e}");
        log::error(
            "fleetd.serve.error",
            &[("error", Value::Str(&e.to_string()))],
        );
        log::shutdown();
        return ExitCode::FAILURE;
    }
    println!("campion-fleetd: shutdown requested, exiting");
    log::info("fleetd.stop", &[]);
    log::shutdown();
    ExitCode::SUCCESS
}
