//! The HTTP API surface: one routing function shared by the daemon binary
//! and the in-process tests, so the e2e incrementality proof exercises the
//! exact code the service runs.
//!
//! | Method | Path                          | Body                              |
//! |--------|-------------------------------|-----------------------------------|
//! | POST   | `/api/v1/snapshot`            | snapshot JSON → ingest summary    |
//! | GET    | `/api/v1/status`              | latest-snapshot summary           |
//! | GET    | `/api/v1/pairs`               | every pair's status + provenance  |
//! | GET    | `/api/v1/pair/{a}/{b}`        | summary + resources + report      |
//! | GET    | `/api/v1/pair/{a}/{b}/report` | structured report (stable JSON)   |
//! | GET    | `/api/v1/pair/{a}/{b}/text`   | text report, byte-identical to CLI|
//! | GET    | `/api/v1/metrics`             | counters + per-phase trace stats  |
//! | GET    | `/api/v1/flight`              | flight-recorder dump inventory    |
//! | GET    | `/api/v1/flight/{seq}`        | one Chrome-trace flight artifact  |
//! | GET    | `/metrics`                    | Prometheus text exposition 0.0.4  |
//! | POST   | `/api/v1/shutdown`            | acknowledges, then stops serving  |
//!
//! Every request is timed and folded into the daemon's HTTP latency
//! histogram and per-status-code counters (both exported at `/metrics`).

use std::time::Instant;

use campion_trace::log::{self, Value};

use crate::daemon::Daemon;
use crate::http::{Request, Response};
use crate::snapshot::SnapshotInput;

/// `Content-Type` of the Prometheus text exposition.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Route one request. Returns the response plus the shutdown flag.
pub fn handle(daemon: &mut Daemon, req: &Request) -> (Response, bool) {
    let t = Instant::now();
    let resp = route(daemon, req);
    let dur_ns = t.elapsed().as_nanos() as u64;
    daemon.record_http(resp.status, dur_ns);
    log::debug(
        "http.request",
        &[
            ("method", Value::Str(&req.method)),
            ("path", Value::Str(&req.path)),
            ("status", Value::U64(resp.status as u64)),
            ("dur_us", Value::U64(dur_ns / 1_000)),
        ],
    );
    let shutdown = req.method == "POST" && req.path == "/api/v1/shutdown";
    (resp, shutdown)
}

fn route(daemon: &mut Daemon, req: &Request) -> Response {
    let segments: Vec<&str> = req
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["api", "v1", "snapshot"]) => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(b) => b,
                Err(_) => return Response::error(400, "snapshot body is not UTF-8"),
            };
            match SnapshotInput::from_json(body).and_then(|input| daemon.ingest(&input)) {
                Ok(summary) => Response::json(200, summary.to_json()),
                Err(e) => Response::error(400, &e),
            }
        }
        ("POST", ["api", "v1", "shutdown"]) => Response::json(200, "{\"ok\": true}\n"),
        ("GET", ["api", "v1", "status"]) => Response::json(200, daemon.status_json()),
        ("GET", ["api", "v1", "pairs"]) => Response::json(200, daemon.pairs_json()),
        ("GET", ["api", "v1", "metrics"]) => Response::json(200, daemon.metrics_json()),
        ("GET", ["metrics"]) => Response {
            status: 200,
            content_type: PROMETHEUS_CONTENT_TYPE,
            body: daemon.prometheus().into_bytes(),
        },
        ("GET", ["api", "v1", "flight"]) => Response::json(200, daemon.flight_json()),
        ("GET", ["api", "v1", "flight", seq]) => match seq.parse::<u64>() {
            Ok(seq) => match daemon.flight_dump(seq) {
                Some(body) => Response::json(200, body),
                None => Response::error(404, &format!("no flight dump for snapshot {seq}")),
            },
            Err(_) => Response::error(400, &format!("bad flight sequence number: {seq}")),
        },
        ("GET", ["api", "v1", "pair", a, b]) => match daemon.pair_json(a, b) {
            Some(body) => Response::json(200, body),
            None => Response::error(404, &format!("no such pair: {a} {b}")),
        },
        ("GET", ["api", "v1", "pair", a, b, "report"]) => match daemon.pair_report_json(a, b) {
            Some(body) => Response::json(200, body.as_bytes().to_vec()),
            None => Response::error(404, &format!("no such pair: {a} {b}")),
        },
        ("GET", ["api", "v1", "pair", a, b, "text"]) => match daemon.pair_report_text(a, b) {
            Some(body) => Response::text(200, body.as_bytes().to_vec()),
            None => Response::error(404, &format!("no such pair: {a} {b}")),
        },
        ("GET", _) => Response::error(404, &format!("no such endpoint: {}", req.path)),
        _ => Response::error(405, &format!("{} not allowed on {}", req.method, req.path)),
    }
}
