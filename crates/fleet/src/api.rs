//! The HTTP API surface: one routing function shared by the daemon binary
//! and the in-process tests, so the e2e incrementality proof exercises the
//! exact code the service runs.
//!
//! | Method | Path                          | Body                              |
//! |--------|-------------------------------|-----------------------------------|
//! | POST   | `/api/v1/snapshot`            | snapshot JSON → ingest summary    |
//! | GET    | `/api/v1/status`              | latest-snapshot summary           |
//! | GET    | `/api/v1/pairs`               | every pair's status + provenance  |
//! | GET    | `/api/v1/pair/{a}/{b}`        | summary + embedded report         |
//! | GET    | `/api/v1/pair/{a}/{b}/report` | structured report (stable JSON)   |
//! | GET    | `/api/v1/pair/{a}/{b}/text`   | text report, byte-identical to CLI|
//! | GET    | `/api/v1/metrics`             | counters + per-phase trace stats  |
//! | POST   | `/api/v1/shutdown`            | acknowledges, then stops serving  |

use crate::daemon::Daemon;
use crate::http::{Request, Response};
use crate::snapshot::SnapshotInput;

/// Route one request. Returns the response plus the shutdown flag.
pub fn handle(daemon: &mut Daemon, req: &Request) -> (Response, bool) {
    let resp = route(daemon, req);
    let shutdown = req.method == "POST" && req.path == "/api/v1/shutdown";
    (resp, shutdown)
}

fn route(daemon: &mut Daemon, req: &Request) -> Response {
    let segments: Vec<&str> = req
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["api", "v1", "snapshot"]) => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(b) => b,
                Err(_) => return Response::error(400, "snapshot body is not UTF-8"),
            };
            match SnapshotInput::from_json(body).and_then(|input| daemon.ingest(&input)) {
                Ok(summary) => Response::json(200, summary.to_json()),
                Err(e) => Response::error(400, &e),
            }
        }
        ("POST", ["api", "v1", "shutdown"]) => Response::json(200, "{\"ok\": true}\n"),
        ("GET", ["api", "v1", "status"]) => Response::json(200, daemon.status_json()),
        ("GET", ["api", "v1", "pairs"]) => Response::json(200, daemon.pairs_json()),
        ("GET", ["api", "v1", "metrics"]) => Response::json(200, daemon.metrics_json()),
        ("GET", ["api", "v1", "pair", a, b]) => match daemon.pair_json(a, b) {
            Some(body) => Response::json(200, body),
            None => Response::error(404, &format!("no such pair: {a} {b}")),
        },
        ("GET", ["api", "v1", "pair", a, b, "report"]) => match daemon.pair_report_json(a, b) {
            Some(body) => Response::json(200, body.as_bytes().to_vec()),
            None => Response::error(404, &format!("no such pair: {a} {b}")),
        },
        ("GET", ["api", "v1", "pair", a, b, "text"]) => match daemon.pair_report_text(a, b) {
            Some(body) => Response::text(200, body.as_bytes().to_vec()),
            None => Response::error(404, &format!("no such pair: {a} {b}")),
        },
        ("GET", _) => Response::error(404, &format!("no such endpoint: {}", req.path)),
        _ => Response::error(405, &format!("{} not allowed on {}", req.method, req.path)),
    }
}
