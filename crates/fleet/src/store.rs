//! The versioned on-disk snapshot store.
//!
//! One self-contained document per ingested snapshot, written atomically
//! as `snap-<seq>.json` under the store directory. Every document starts
//! with an explicit format marker and version so a reader can refuse what
//! it does not understand instead of misreading it:
//!
//! ```json
//! { "format": "campion-fleet-snapshot", "version": 1, ... }
//! ```
//!
//! Hashes are 64-bit and stored as 16-digit hex **strings** — the decode
//! side parses JSON numbers as `f64`, which silently drops bits above
//! 2^53, so integers that must round-trip exactly never travel as
//! numbers. Resource-attribution counters (version 2) are plain numbers —
//! they are bounded workload counts, far below 2^53. Decoding uses the
//! workspace's hand-rolled JSON parser (`campion_trace::json`); corruption
//! surfaces as a clean `Err`, never a panic. Old documents are pinned by
//! committed fixtures (`testdata/fleet/snap-v1.json`, `snap-v2.json`) that
//! the current reader must always decode — the backwards-compatibility
//! gate. Version 1 predates per-pair resource attribution; its pairs
//! decode with zeroed [`PairResources`].
//!
//! The store directory is single-writer: [`FleetStore::open`] takes a
//! `lock` file (`create_new` + PID) so a second daemon pointed at the same
//! directory fails fast with a clear error instead of interleaving
//! snapshots; the lock is removed on drop (clean shutdown).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use campion_ir::hash::ComponentHashes;
use campion_trace::json::{escape, parse, Json};

/// The store format this build writes, and the newest it reads. Version
/// history: 1 = initial (PR 8); 2 adds per-pair `resources` (wall time,
/// BDD node/GC/cache counters).
pub const FORMAT_VERSION: u64 = 2;

/// The format marker every snapshot document carries.
pub const FORMAT_MARKER: &str = "campion-fleet-snapshot";

/// Per-router record: the raw-text hash (parse-skip fast path) plus the
/// per-component content hashes (recompute decisions and provenance).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouterRecord {
    /// FNV-1a64 of the configuration bytes.
    pub text_hash: u64,
    /// Per-component hashes of the lowered VI model.
    pub components: ComponentHashes,
}

/// How a pair's result entered this snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairStatus {
    /// The compare pipeline ran during this snapshot's ingest.
    Computed,
    /// Served from the store: no relevant component changed since the
    /// snapshot named by `computed_at`.
    Cached,
}

impl PairStatus {
    fn as_str(self) -> &'static str {
        match self {
            PairStatus::Computed => "computed",
            PairStatus::Cached => "cached",
        }
    }
}

/// Per-pair resource attribution: what one compare cost, captured from the
/// pair's `ManagerStats` at ingest and persisted so an operator can ask
/// "which pair is eating the fleet's memory/GC budget" long after the
/// compute happened. Cached pairs carry the figures of the ingest that
/// actually computed them (provenance: `computed_at`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairResources {
    /// Wall nanoseconds of the compare that produced this result (unlike
    /// `PairRecord::compute_ns`, not zeroed when served from the store).
    pub wall_ns: u64,
    /// Live BDD nodes when the compare finished.
    pub bdd_nodes: u64,
    /// Peak live BDD nodes during the compare.
    pub peak_nodes: u64,
    /// Live nodes right after the last sweep (0 if GC never ran).
    pub post_gc_nodes: u64,
    /// Completed collections.
    pub gc_runs: u64,
    /// Collector entries (incl. mark-only passes).
    pub gc_pauses: u64,
    /// Total GC pause time, microseconds.
    pub gc_pause_us: u64,
    /// Longest single GC pause, microseconds.
    pub gc_pause_max_us: u64,
    /// Unique-table lookups / hits.
    pub unique_lookups: u64,
    /// Unique-table hits.
    pub unique_hits: u64,
    /// Apply-cache lookups.
    pub apply_lookups: u64,
    /// Apply-cache hits.
    pub apply_hits: u64,
    /// Rule-BDD cache lookups.
    pub rule_cache_lookups: u64,
    /// Rule-BDD cache hits.
    pub rule_cache_hits: u64,
}

impl PairResources {
    pub(crate) fn encode(&self) -> String {
        format!(
            "{{\"wall_ns\": {}, \"bdd_nodes\": {}, \"peak_nodes\": {}, \
             \"post_gc_nodes\": {}, \"gc_runs\": {}, \"gc_pauses\": {}, \
             \"gc_pause_us\": {}, \"gc_pause_max_us\": {}, \
             \"unique_lookups\": {}, \"unique_hits\": {}, \
             \"apply_lookups\": {}, \"apply_hits\": {}, \
             \"rule_cache_lookups\": {}, \"rule_cache_hits\": {}}}",
            self.wall_ns,
            self.bdd_nodes,
            self.peak_nodes,
            self.post_gc_nodes,
            self.gc_runs,
            self.gc_pauses,
            self.gc_pause_us,
            self.gc_pause_max_us,
            self.unique_lookups,
            self.unique_hits,
            self.apply_lookups,
            self.apply_hits,
            self.rule_cache_lookups,
            self.rule_cache_hits,
        )
    }

    fn decode(j: &Json) -> Result<PairResources, String> {
        Ok(PairResources {
            wall_ns: get_u64(j, "wall_ns")?,
            bdd_nodes: get_u64(j, "bdd_nodes")?,
            peak_nodes: get_u64(j, "peak_nodes")?,
            post_gc_nodes: get_u64(j, "post_gc_nodes")?,
            gc_runs: get_u64(j, "gc_runs")?,
            gc_pauses: get_u64(j, "gc_pauses")?,
            gc_pause_us: get_u64(j, "gc_pause_us")?,
            gc_pause_max_us: get_u64(j, "gc_pause_max_us")?,
            unique_lookups: get_u64(j, "unique_lookups")?,
            unique_hits: get_u64(j, "unique_hits")?,
            apply_lookups: get_u64(j, "apply_lookups")?,
            apply_hits: get_u64(j, "apply_hits")?,
            rule_cache_lookups: get_u64(j, "rule_cache_lookups")?,
            rule_cache_hits: get_u64(j, "rule_cache_hits")?,
        })
    }
}

/// One pair's result within a snapshot, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct PairRecord {
    /// First router name (manifest order).
    pub router1: String,
    /// Second router name.
    pub router2: String,
    /// Combined content key of both routers' compared components.
    pub pair_key: u64,
    /// Computed this ingest, or served from the store.
    pub status: PairStatus,
    /// The snapshot sequence number whose ingest actually ran the compare
    /// (`computed @ snapshot k` provenance).
    pub computed_at: u64,
    /// The components whose hashes moved and forced the recompute
    /// (empty for cached pairs and for a fleet's first snapshot).
    pub changed: Vec<String>,
    /// Whether the pair was found behaviorally equivalent.
    pub equivalent: bool,
    /// Number of reported differences.
    pub differences: u64,
    /// Wall nanoseconds the compare took (0 when served from the store).
    pub compute_ns: u64,
    /// What the compare cost (carried along when served from the store).
    pub resources: PairResources,
    /// The rendered text report — byte-identical to `campion compare`.
    pub report_text: String,
    /// The structured JSON report — byte-identical to
    /// `campion compare --format json`.
    pub report_json: String,
}

/// One ingested snapshot: routers, their hashes, and every pair's result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotRecord {
    /// Monotonic sequence number, 1-based.
    pub seq: u64,
    /// Operator-facing snapshot label.
    pub name: String,
    /// Ingest wall-clock time, seconds since the Unix epoch.
    pub ingested_unix: u64,
    /// Per-router hash records.
    pub routers: BTreeMap<String, RouterRecord>,
    /// Pair results in manifest order.
    pub pairs: Vec<PairRecord>,
}

fn hex(h: u64) -> String {
    format!("{h:016x}")
}

fn from_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hash {s:?}: {e}"))
}

fn hash_map_json(m: &BTreeMap<String, u64>) -> String {
    let parts: Vec<String> = m
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), hex(*v)))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    let n = j
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))?;
    if n < 0.0 || n > 2f64.powi(53) {
        return Err(format!("field {key:?} out of exact integer range: {n}"));
    }
    Ok(n as u64)
}

fn get_bool(j: &Json, key: &str) -> Result<bool, String> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field {key:?}"))
}

fn get_hash(j: &Json, key: &str) -> Result<u64, String> {
    from_hex(get_str(j, key)?)
}

fn get_hash_map(j: &Json, key: &str) -> Result<BTreeMap<String, u64>, String> {
    match j.get(key) {
        Some(Json::Obj(members)) => {
            let mut out = BTreeMap::new();
            for (k, v) in members {
                let s = v
                    .as_str()
                    .ok_or_else(|| format!("hash map {key:?} entry {k:?} is not a string"))?;
                out.insert(k.clone(), from_hex(s)?);
            }
            Ok(out)
        }
        _ => Err(format!("missing object field {key:?}")),
    }
}

impl SnapshotRecord {
    /// Serialize as a self-contained, versioned JSON document.
    pub fn encode(&self) -> String {
        let mut o = String::from("{\n");
        let _ = write!(
            o,
            "  \"format\": \"{FORMAT_MARKER}\",\n  \"version\": {FORMAT_VERSION},\n"
        );
        let _ = writeln!(
            o,
            "  \"seq\": {}, \"name\": \"{}\", \"ingested_unix\": {},",
            self.seq,
            escape(&self.name),
            self.ingested_unix
        );
        o.push_str("  \"routers\": {\n");
        let routers: Vec<String> = self
            .routers
            .iter()
            .map(|(name, r)| {
                format!(
                    "    \"{}\": {{\"text_hash\": \"{}\", \"structural\": \"{}\", \
                     \"policies\": {}, \"acls\": {}}}",
                    escape(name),
                    hex(r.text_hash),
                    hex(r.components.structural),
                    hash_map_json(&r.components.policies),
                    hash_map_json(&r.components.acls),
                )
            })
            .collect();
        o.push_str(&routers.join(",\n"));
        o.push_str("\n  },\n  \"pairs\": [\n");
        let pairs: Vec<String> = self
            .pairs
            .iter()
            .map(|p| {
                let changed: Vec<String> = p
                    .changed
                    .iter()
                    .map(|c| format!("\"{}\"", escape(c)))
                    .collect();
                format!(
                    "    {{\"router1\": \"{}\", \"router2\": \"{}\", \"pair_key\": \"{}\", \
                     \"status\": \"{}\", \"computed_at\": {}, \"changed\": [{}], \
                     \"equivalent\": {}, \"differences\": {}, \"compute_ns\": {}, \
                     \"resources\": {}, \
                     \"report_text\": \"{}\", \"report_json\": \"{}\"}}",
                    escape(&p.router1),
                    escape(&p.router2),
                    hex(p.pair_key),
                    p.status.as_str(),
                    p.computed_at,
                    changed.join(", "),
                    p.equivalent,
                    p.differences,
                    p.compute_ns,
                    p.resources.encode(),
                    escape(&p.report_text),
                    escape(&p.report_json),
                )
            })
            .collect();
        o.push_str(&pairs.join(",\n"));
        o.push_str("\n  ]\n}\n");
        o
    }

    /// Decode a document, refusing unknown formats and newer versions.
    pub fn decode(text: &str) -> Result<Self, String> {
        let doc = parse(text).map_err(|e| format!("snapshot document: {e}"))?;
        match doc.get("format").and_then(Json::as_str) {
            Some(FORMAT_MARKER) => {}
            Some(other) => return Err(format!("not a fleet snapshot (format {other:?})")),
            None => return Err("not a fleet snapshot (no format marker)".to_string()),
        }
        let version = get_u64(&doc, "version")?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(format!(
                "unsupported snapshot format version {version} (this reader supports 1..={FORMAT_VERSION})"
            ));
        }
        let mut routers = BTreeMap::new();
        match doc.get("routers") {
            Some(Json::Obj(members)) => {
                for (name, r) in members {
                    routers.insert(
                        name.clone(),
                        RouterRecord {
                            text_hash: get_hash(r, "text_hash")?,
                            components: ComponentHashes {
                                structural: get_hash(r, "structural")?,
                                policies: get_hash_map(r, "policies")?,
                                acls: get_hash_map(r, "acls")?,
                            },
                        },
                    );
                }
            }
            _ => return Err("missing \"routers\" object".to_string()),
        }
        let mut pairs = Vec::new();
        for p in doc
            .get("pairs")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing \"pairs\" array".to_string())?
        {
            let status = match get_str(p, "status")? {
                "computed" => PairStatus::Computed,
                "cached" => PairStatus::Cached,
                other => return Err(format!("unknown pair status {other:?}")),
            };
            let changed = p
                .get("changed")
                .and_then(Json::as_arr)
                .ok_or_else(|| "missing \"changed\" array".to_string())?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "non-string changed entry".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            // v1 predates resource attribution: decode those pairs with
            // zeroed resources instead of refusing the document.
            let resources = match p.get("resources") {
                Some(r) => PairResources::decode(r)?,
                None if version < 2 => PairResources::default(),
                None => return Err("missing \"resources\" object".to_string()),
            };
            pairs.push(PairRecord {
                router1: get_str(p, "router1")?.to_string(),
                router2: get_str(p, "router2")?.to_string(),
                pair_key: get_hash(p, "pair_key")?,
                status,
                computed_at: get_u64(p, "computed_at")?,
                changed,
                equivalent: get_bool(p, "equivalent")?,
                differences: get_u64(p, "differences")?,
                compute_ns: get_u64(p, "compute_ns")?,
                resources,
                report_text: get_str(p, "report_text")?.to_string(),
                report_json: get_str(p, "report_json")?.to_string(),
            });
        }
        Ok(SnapshotRecord {
            seq: get_u64(&doc, "seq")?,
            name: get_str(&doc, "name")?.to_string(),
            ingested_unix: get_u64(&doc, "ingested_unix")?,
            routers,
            pairs,
        })
    }

    /// Find a pair record by router names (manifest order).
    pub fn find_pair(&self, r1: &str, r2: &str) -> Option<&PairRecord> {
        self.pairs
            .iter()
            .find(|p| p.router1 == r1 && p.router2 == r2)
    }
}

/// A directory of snapshot documents. Single-writer: holds a PID lock
/// file for its lifetime (removed on drop).
#[derive(Debug)]
pub struct FleetStore {
    dir: PathBuf,
    lock_path: PathBuf,
}

impl FleetStore {
    /// Open (creating if needed) a store directory, taking its exclusive
    /// lock. Fails with a clear error naming the holder's PID when another
    /// process already owns the directory.
    pub fn open(dir: &Path) -> Result<Self, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let lock_path = dir.join("lock");
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut f) => {
                use std::io::Write as _;
                let _ = writeln!(f, "{}", std::process::id());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(&lock_path)
                    .map(|s| s.trim().to_string())
                    .unwrap_or_default();
                let holder = if holder.is_empty() {
                    "unknown pid".to_string()
                } else {
                    format!("pid {holder}")
                };
                return Err(format!(
                    "store {} is locked by another process ({holder});                      is a second campion-fleetd running? remove {} if it is stale",
                    dir.display(),
                    lock_path.display()
                ));
            }
            Err(e) => return Err(format!("{}: {e}", lock_path.display())),
        }
        Ok(FleetStore {
            dir: dir.to_path_buf(),
            lock_path,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snap_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snap-{seq:06}.json"))
    }

    /// All stored sequence numbers, ascending.
    pub fn seqs(&self) -> Result<Vec<u64>, String> {
        let mut out = Vec::new();
        let entries =
            std::fs::read_dir(&self.dir).map_err(|e| format!("{}: {e}", self.dir.display()))?;
        for entry in entries {
            let name = entry
                .map_err(|e| format!("{}: {e}", self.dir.display()))?
                .file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("snap-")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push(seq);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Load one snapshot by sequence number.
    pub fn load(&self, seq: u64) -> Result<SnapshotRecord, String> {
        let path = self.snap_path(seq);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        SnapshotRecord::decode(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Load the newest snapshot, if any.
    pub fn latest(&self) -> Result<Option<SnapshotRecord>, String> {
        match self.seqs()?.last() {
            Some(&seq) => Ok(Some(self.load(seq)?)),
            None => Ok(None),
        }
    }

    /// Persist a snapshot atomically (temp file + rename).
    pub fn save(&self, snap: &SnapshotRecord) -> Result<PathBuf, String> {
        let path = self.snap_path(snap.seq);
        let tmp = self.dir.join(format!(".snap-{:06}.tmp", snap.seq));
        std::fs::write(&tmp, snap.encode()).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(path)
    }
}

impl Drop for FleetStore {
    fn drop(&mut self) {
        // Clean shutdown releases the directory for the next daemon. A
        // crashed process leaves the lock behind on purpose: the error
        // message tells the operator which PID to check and what to remove.
        let _ = std::fs::remove_file(&self.lock_path);
    }
}
