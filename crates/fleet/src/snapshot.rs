//! Snapshot inputs: a named set of router configurations plus the pair
//! manifest declaring which routers are expected to be behaviorally
//! equivalent.
//!
//! Two ingestion forms, one model: a directory (`*.cfg` files plus
//! `pairs.manifest`) for the CLI, and a JSON document for the HTTP API's
//! `POST /api/v1/snapshot`. The CLI client reads the directory form and
//! posts the JSON form, so the daemon only ever sees one shape.

use std::collections::BTreeMap;
use std::path::Path;

use campion_trace::json::{escape, parse, Json};

/// The name of the pair manifest inside a snapshot directory: one pair of
/// router names per line (whitespace-separated), `#` starts a comment.
pub const MANIFEST: &str = "pairs.manifest";

/// One network snapshot, ready to ingest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotInput {
    /// Operator-facing snapshot label (defaults to the directory name).
    pub name: String,
    /// Router name → raw configuration text.
    pub configs: BTreeMap<String, String>,
    /// Pairs of router names expected equivalent, in manifest order.
    pub pairs: Vec<(String, String)>,
}

impl SnapshotInput {
    /// Load a snapshot from a directory: every `*.cfg` file becomes a
    /// router (named by file stem), and `pairs.manifest` names the pairs.
    pub fn from_dir(dir: &Path) -> Result<Self, String> {
        let mut configs = BTreeMap::new();
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("cfg") {
                continue;
            }
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("{}: non-UTF-8 file name", path.display()))?
                .to_string();
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            configs.insert(stem, text);
        }
        let manifest_path = dir.join(MANIFEST);
        let manifest = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        let mut pairs = Vec::new();
        for (lineno, line) in manifest.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(a), Some(b), None) => pairs.push((a.to_string(), b.to_string())),
                _ => {
                    return Err(format!(
                        "{}:{}: expected two router names, got {line:?}",
                        manifest_path.display(),
                        lineno + 1
                    ))
                }
            }
        }
        let name = dir
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("snapshot")
            .to_string();
        let snap = SnapshotInput {
            name,
            configs,
            pairs,
        };
        snap.validate()?;
        Ok(snap)
    }

    /// Every pair must name a router that has a configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.pairs.is_empty() {
            return Err("snapshot has no pairs (empty or missing manifest)".to_string());
        }
        for (a, b) in &self.pairs {
            for r in [a, b] {
                if !self.configs.contains_key(r) {
                    return Err(format!("pair names unknown router {r:?}"));
                }
            }
        }
        Ok(())
    }

    /// The JSON body of `POST /api/v1/snapshot`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::from("{");
        let _ = write!(o, "\"name\": \"{}\", \"configs\": {{", escape(&self.name));
        let configs: Vec<String> = self
            .configs
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
            .collect();
        o.push_str(&configs.join(", "));
        o.push_str("}, \"pairs\": [");
        let pairs: Vec<String> = self
            .pairs
            .iter()
            .map(|(a, b)| format!("[\"{}\", \"{}\"]", escape(a), escape(b)))
            .collect();
        o.push_str(&pairs.join(", "));
        o.push_str("]}");
        o
    }

    /// Parse the JSON body of `POST /api/v1/snapshot`.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = parse(text).map_err(|e| format!("snapshot body: {e}"))?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("snapshot")
            .to_string();
        let mut configs = BTreeMap::new();
        match doc.get("configs") {
            Some(Json::Obj(members)) => {
                for (k, v) in members {
                    let text = v
                        .as_str()
                        .ok_or_else(|| format!("config {k:?} is not a string"))?;
                    configs.insert(k.clone(), text.to_string());
                }
            }
            _ => return Err("snapshot body: missing \"configs\" object".to_string()),
        }
        let mut pairs = Vec::new();
        match doc.get("pairs").and_then(Json::as_arr) {
            Some(list) => {
                for p in list {
                    let p = p.as_arr().unwrap_or(&[]);
                    match p {
                        [a, b] => match (a.as_str(), b.as_str()) {
                            (Some(a), Some(b)) => pairs.push((a.to_string(), b.to_string())),
                            _ => return Err("pair entries must be strings".to_string()),
                        },
                        _ => return Err("each pair must be a two-element array".to_string()),
                    }
                }
            }
            None => return Err("snapshot body: missing \"pairs\" array".to_string()),
        }
        let snap = SnapshotInput {
            name,
            configs,
            pairs,
        };
        snap.validate()?;
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotInput {
        SnapshotInput {
            name: "snapA".to_string(),
            configs: BTreeMap::from([
                ("r1".to_string(), "hostname r1\n".to_string()),
                ("r2".to_string(), "hostname r2\n".to_string()),
            ]),
            pairs: vec![("r1".to_string(), "r2".to_string())],
        }
    }

    #[test]
    fn json_round_trip() {
        let s = sample();
        assert_eq!(SnapshotInput::from_json(&s.to_json()).expect("parse"), s);
    }

    #[test]
    fn unknown_router_in_pair_is_rejected() {
        let mut s = sample();
        s.pairs.push(("r1".to_string(), "ghost".to_string()));
        assert!(s.validate().unwrap_err().contains("ghost"));
    }

    #[test]
    fn directory_round_trip() {
        let dir = std::env::temp_dir().join(format!("campion-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("r1.cfg"), "hostname r1\n").expect("write");
        std::fs::write(dir.join("r2.cfg"), "hostname r2\n").expect("write");
        std::fs::write(dir.join(MANIFEST), "# fleet\nr1 r2\n").expect("write");
        let s = SnapshotInput::from_dir(&dir).expect("load");
        assert_eq!(s.pairs, vec![("r1".to_string(), "r2".to_string())]);
        assert_eq!(s.configs.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
