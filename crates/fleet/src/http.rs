//! A deliberately minimal HTTP/1.1 server and client over `std::net`,
//! in the workspace's vendored-shim philosophy: no external crates, just
//! enough of the protocol for a localhost JSON API.
//!
//! The server runs a sequential accept loop — one request at a time, one
//! connection per request (`Connection: close`). That makes the handler a
//! plain `FnMut` with exclusive access to the daemon state: no locks, no
//! interleaving, and the ingest path keeps the whole machine via the
//! work-stealing pool anyway. Request bodies are capped to keep a stray
//! client from ballooning memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Maximum accepted request body, bytes (64 MiB: a large fleet snapshot).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Maximum accepted request-line / header-line length, bytes.
const MAX_LINE: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method, uppercased by the client ("GET", "POST", ...).
    pub method: String,
    /// Path with query string, percent-decoding *not* applied (router
    /// names in this API are config hostnames: `[A-Za-z0-9._-]`).
    pub path: String,
    /// Raw body bytes, decoded via `Content-Length`.
    pub body: Vec<u8>,
}

/// One response to send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// The standard JSON error shape.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!(
                "{{\"error\": \"{}\"}}\n",
                campion_trace::json::escape(message)
            ),
        )
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

/// Read one request from a connection. Returns `None` on a malformed or
/// oversized request (the connection is just dropped; a localhost API
/// does not negotiate with broken clients).
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok().filter(|&n| n > 0)?;
    if line.len() > MAX_LINE {
        return None;
    }
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok().filter(|&n| n > 0)?;
        if header.len() > MAX_LINE {
            return None;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    if content_length > MAX_BODY {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(Request { method, path, body })
}

fn write_response(stream: &mut TcpStream, resp: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(&resp.body);
    let _ = stream.flush();
}

/// Per-socket read/write deadline: the accept loop is sequential, so one
/// client that connects and then stalls (or never drains its response)
/// would otherwise wedge the daemon for every other client.
const SOCKET_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// Serve requests until the handler asks to shut down. The handler
/// returns the response plus a `shutdown` flag; the flagged response is
/// still delivered before the loop exits. Accepted sockets get read and
/// write timeouts ([`SOCKET_TIMEOUT`]): a stalled request times out, is
/// dropped, and the loop moves to the next connection.
pub fn serve(
    listener: &TcpListener,
    mut handler: impl FnMut(&Request) -> (Response, bool),
) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let mut stream = stream?;
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        let Some(req) = read_request(&mut stream) else {
            continue;
        };
        let (resp, shutdown) = handler(&req);
        write_response(&mut stream, &resp);
        if shutdown {
            break;
        }
    }
    Ok(())
}

/// A one-shot HTTP request (the client side). Returns the status code and
/// body text.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 || header.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
    }
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|e| format!("non-UTF-8 body: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            serve(&listener, |req| {
                let echo = format!(
                    "{} {} {}",
                    req.method,
                    req.path,
                    String::from_utf8_lossy(&req.body)
                );
                (Response::text(200, echo), req.path == "/stop")
            })
            .expect("serve");
        });
        let (status, body) = request(addr, "POST", "/echo", Some("hi")).expect("request");
        assert_eq!((status, body.as_str()), (200, "POST /echo hi"));
        let (status, _) = request(addr, "GET", "/stop", None).expect("request");
        assert_eq!(status, 200);
        server.join().expect("join");
    }

    #[test]
    fn error_response_shape() {
        let r = Response::error(404, "no such pair");
        assert_eq!(r.status, 404);
        assert_eq!(
            String::from_utf8(r.body).expect("utf8"),
            "{\"error\": \"no such pair\"}\n"
        );
    }
}
