//! The Capirca-like random ACL generator (§5.4).
//!
//! Capirca compiles one abstract policy to multiple vendor formats; the
//! paper used it to generate "nearly equivalent" Cisco and Juniper ACLs of
//! a given size with 10 injected differences, then measured SemanticDiff's
//! runtime at 1 000 and 10 000 rules. This generator does the same: it
//! draws an abstract rule list, renders it in both dialects, and perturbs a
//! chosen number of rules on the Juniper side.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One abstract ACL rule.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GenRule {
    permit: bool,
    /// 6 = tcp, 17 = udp, 0 = any.
    proto: u8,
    /// Source prefix as (address, length); `None` = any.
    src: Option<(u32, u8)>,
    /// Destination prefix.
    dst: Option<(u32, u8)>,
    /// Destination port; `None` = any.
    dst_port: Option<u16>,
}

fn random_prefix(rng: &mut StdRng) -> (u32, u8) {
    let len = rng.gen_range(8..=28);
    let addr: u32 = rng.gen::<u32>() & (u32::MAX << (32 - len));
    (addr, len)
}

fn random_rule(rng: &mut StdRng) -> GenRule {
    let proto = *[0u8, 6, 6, 6, 17]
        .get(rng.gen_range(0..5usize))
        .expect("index in range");
    let src = if rng.gen_bool(0.7) {
        Some(random_prefix(rng))
    } else {
        None
    };
    // Never generate a full catch-all (`permit ip any any`) mid-list: real
    // Capirca policies are term-specific, and an early catch-all would
    // shadow the whole remainder of the ACL.
    let dst = if rng.gen_bool(0.7) || (src.is_none() && proto == 0) {
        Some(random_prefix(rng))
    } else {
        None
    };
    GenRule {
        permit: rng.gen_bool(0.8),
        proto,
        src,
        dst,
        dst_port: if proto != 0 && rng.gen_bool(0.6) {
            Some(rng.gen_range(1..=u16::MAX))
        } else {
            None
        },
    }
}

/// A concrete probe packet aimed at a rule: source/destination network
/// addresses, the rule's protocol (TCP when unconstrained) and port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Probe {
    src: u32,
    dst: u32,
    proto: u8,
    dst_port: u16,
}

fn probe_for(rule: &GenRule) -> Probe {
    Probe {
        src: rule.src.map(|(a, _)| a).unwrap_or(0x01020304),
        dst: rule.dst.map(|(a, _)| a).unwrap_or(0x05060708),
        proto: if rule.proto == 0 { 6 } else { rule.proto },
        dst_port: rule.dst_port.unwrap_or(80),
    }
}

fn rule_matches(rule: &GenRule, p: &Probe) -> bool {
    let prefix_hit = |pref: Option<(u32, u8)>, addr: u32| match pref {
        None => true,
        Some((base, len)) => {
            let m = if len == 0 {
                0
            } else {
                u32::MAX << (32 - u32::from(len))
            };
            addr & m == base
        }
    };
    (rule.proto == 0 || rule.proto == p.proto)
        && prefix_hit(rule.src, p.src)
        && prefix_hit(rule.dst, p.dst)
        && match rule.dst_port {
            None => true,
            Some(port) => (p.proto == 6 || p.proto == 17) && port == p.dst_port,
        }
}

/// Index of the first matching rule (implicit deny = `None`).
fn first_match(rules: &[GenRule], p: &Probe) -> Option<usize> {
    rules.iter().position(|r| rule_matches(r, p))
}

fn ip(addr: u32) -> String {
    std::net::Ipv4Addr::from(addr).to_string()
}

fn wildcard(len: u8) -> String {
    let w = if len == 0 {
        u32::MAX
    } else {
        !(u32::MAX << (32 - u32::from(len)))
    };
    ip(w)
}

fn render_cisco(name: &str, rules: &[GenRule]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ip access-list extended {name}");
    for r in rules {
        let action = if r.permit { "permit" } else { "deny" };
        let proto = match r.proto {
            6 => "tcp",
            17 => "udp",
            _ => "ip",
        };
        let src = match r.src {
            Some((a, l)) => format!("{} {}", ip(a), wildcard(l)),
            None => "any".to_string(),
        };
        let dst = match r.dst {
            Some((a, l)) => format!("{} {}", ip(a), wildcard(l)),
            None => "any".to_string(),
        };
        let port = match r.dst_port {
            Some(p) => format!(" eq {p}"),
            None => String::new(),
        };
        let _ = writeln!(out, " {action} {proto} {src} {dst}{port}");
    }
    let _ = writeln!(out, " deny ip any any");
    out
}

fn render_juniper(name: &str, rules: &[GenRule]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "firewall {{");
    let _ = writeln!(out, "    family inet {{");
    let _ = writeln!(out, "        filter {name} {{");
    for (i, r) in rules.iter().enumerate() {
        let _ = writeln!(out, "            term t{i} {{");
        let has_from = r.src.is_some() || r.dst.is_some() || r.proto != 0 || r.dst_port.is_some();
        if has_from {
            let _ = writeln!(out, "                from {{");
            if let Some((a, l)) = r.src {
                let _ = writeln!(out, "                    source-address {}/{};", ip(a), l);
            }
            if let Some((a, l)) = r.dst {
                let _ = writeln!(
                    out,
                    "                    destination-address {}/{};",
                    ip(a),
                    l
                );
            }
            if r.proto != 0 {
                let p = if r.proto == 6 { "tcp" } else { "udp" };
                let _ = writeln!(out, "                    protocol {p};");
            }
            if let Some(p) = r.dst_port {
                let _ = writeln!(out, "                    destination-port {p};");
            }
            let _ = writeln!(out, "                }}");
        }
        let action = if r.permit { "accept" } else { "discard" };
        let _ = writeln!(out, "                then {action};");
        let _ = writeln!(out, "            }}");
    }
    let _ = writeln!(out, "            term final {{");
    let _ = writeln!(out, "                then discard;");
    let _ = writeln!(out, "            }}");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

/// Generate a nearly-equivalent ACL pair: `rules` abstract rules rendered
/// as a Cisco extended ACL and a Juniper inet filter, with `diffs` injected
/// behavioral differences on the Juniper side. Deterministic in `seed`.
///
/// Returns `(cisco_config, juniper_config)`; the ACL is named `ACL-GEN` in
/// both.
pub fn capirca_acl_pair(rules: usize, diffs: usize, seed: u64) -> (String, String) {
    assert!(diffs <= rules, "cannot inject more differences than rules");
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<GenRule> = (0..rules).map(|_| random_rule(&mut rng)).collect();
    let mut perturbed = base.clone();
    // Flip the action of `diffs` distinct *reachable* rules. Reachability
    // is probe-verified: the rule's own probe packet must first-match the
    // rule, so the flip is guaranteed behaviorally visible (the probe's
    // treatment changes).
    let reachable: Vec<usize> = (0..rules)
        .filter(|&i| first_match(&base, &probe_for(&base[i])) == Some(i))
        .collect();
    assert!(
        reachable.len() >= diffs,
        "only {} of {rules} rules are probe-reachable; cannot inject {diffs} differences",
        reachable.len()
    );
    // Spread the perturbations across the reachable set, deterministically.
    let _ = &mut rng;
    let step = reachable.len() / diffs.max(1);
    for k in 0..diffs {
        let i = reachable[k * step.max(1)];
        perturbed[i].permit = !perturbed[i].permit;
    }
    (
        render_cisco("ACL-GEN", &base),
        render_juniper("ACL-GEN", &perturbed),
    )
}
