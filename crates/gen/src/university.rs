//! The university network pairs of §5.2 / Table 8.
//!
//! Two Cisco/Juniper backup pairs. The templates are fixed (the bugs are
//! the point, not the addresses) and seed every difference class the paper
//! reports:
//!
//! **Core pair** — Export 1 carries the full Figure-1 bug set plus the
//! third-clause community match and the fall-through asymmetry (5 raw
//! differences); Export 2 repeats only the prefix-list length bug (1).
//! Static routes differ in two classes (same prefix / different attributes,
//! and present-in-one-only), and the Cisco side is missing
//! `send-community` (the paper's latent BGP-properties finding).
//!
//! **Border pair** — Export 3 and Export 4 carry community-regex
//! differences (1 each); Export 5 references a prefix list missing one
//! entry from two clauses (2 raw differences, 1 root cause); the import
//! policies are behaviorally equivalent (0).

/// The core-router pair `(cisco, juniper)`.
pub fn university_core_pair() -> (String, String) {
    let cisco = "\
hostname core-cisco
!
ip prefix-list NETS permit 10.9.0.0/16 le 32
ip prefix-list NETS permit 10.100.0.0/16 le 32
ip prefix-list CAMPUS permit 172.16.0.0/12 le 32
!
ip community-list standard COMM permit 10:10
ip community-list standard COMM permit 10:11
!
route-map EXPORT1 deny 10
 match ip address prefix-list NETS
route-map EXPORT1 deny 20
 match community COMM
route-map EXPORT1 permit 30
 match ip address prefix-list CAMPUS
 set local-preference 30
!
route-map EXPORT2 deny 10
 match ip address prefix-list NETS
route-map EXPORT2 permit 20
 set local-preference 120
!
ip route 10.1.1.2 255.255.255.254 10.2.2.2
ip route 10.50.0.0 255.255.0.0 10.2.2.3 200 tag 5
!
router bgp 65100
 neighbor 10.0.101.2 remote-as 65100
 neighbor 10.0.101.2 route-map EXPORT1 out
 neighbor 10.0.102.2 remote-as 65100
 neighbor 10.0.102.2 route-map EXPORT2 out
"
    .to_string();

    let juniper = "\
system { host-name core-juniper; }
policy-options {
    prefix-list NETS {
        10.9.0.0/16;
        10.100.0.0/16;
    }
    prefix-list CAMPUS {
        172.16.0.0/12;
    }
    community COMM members [ 10:10 10:11 ];
    community EDU members 20:20;
    policy-statement EXPORT1 {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            from community COMM;
            then reject;
        }
        term rule3 {
            from {
                prefix-list-filter CAMPUS orlonger;
                community EDU;
            }
            then {
                local-preference 30;
                accept;
            }
        }
    }
    policy-statement EXPORT2 {
        term rule1 {
            from prefix-list NETS;
            then reject;
        }
        term rule2 {
            then {
                local-preference 120;
                accept;
            }
        }
    }
}
routing-options {
    autonomous-system 65100;
    static {
        route 10.50.0.0/16 {
            next-hop 10.2.2.99;
            preference 180;
            tag 5;
        }
        route 10.60.0.0/16 next-hop 10.2.2.4;
    }
}
protocols {
    bgp {
        group ibgp {
            type internal;
            neighbor 10.0.101.2 {
                export EXPORT1;
            }
            neighbor 10.0.102.2 {
                export EXPORT2;
            }
        }
    }
}
"
    .to_string();
    (cisco, juniper)
}

/// The border-router pair `(cisco, juniper)`.
pub fn university_border_pair() -> (String, String) {
    let cisco = "\
hostname border-cisco
!
ip community-list expanded PEERS permit _65200:1[0-9]_
ip community-list expanded CUST permit _65300:.*_
ip community-list standard PREM permit 30:30
!
ip prefix-list AGG permit 198.18.0.0/15 le 32
ip prefix-list AGG permit 198.51.100.0/24 le 32
ip prefix-list BOGON permit 10.0.0.0/8 le 32
!
route-map EXPORT3 permit 10
 match community PEERS
 set local-preference 200
route-map EXPORT3 deny 20
!
route-map EXPORT4 deny 10
 match community CUST
route-map EXPORT4 permit 20
!
route-map EXPORT5 permit 10
 match ip address prefix-list AGG
 match community PREM
 set local-preference 300
route-map EXPORT5 permit 20
 match ip address prefix-list AGG
 set local-preference 150
route-map EXPORT5 deny 30
!
route-map IMPORT deny 10
 match ip address prefix-list BOGON
route-map IMPORT permit 20
!
router bgp 65000
 neighbor 192.0.2.1 remote-as 65001
 neighbor 192.0.2.1 route-map EXPORT3 out
 neighbor 192.0.2.1 send-community
 neighbor 192.0.2.5 remote-as 65002
 neighbor 192.0.2.5 route-map EXPORT4 out
 neighbor 192.0.2.5 send-community
 neighbor 192.0.2.9 remote-as 65003
 neighbor 192.0.2.9 route-map EXPORT5 out
 neighbor 192.0.2.9 route-map IMPORT in
 neighbor 192.0.2.9 send-community
"
    .to_string();

    let juniper = "\
system { host-name border-juniper; }
policy-options {
    prefix-list AGG {
        198.18.0.0/15;
    }
    prefix-list BOGON {
        10.0.0.0/8;
    }
    community PEERS members \"^65200:1[0-5]$\";
    community CUST members \"^65300:[0-9]+$\";
    community PREM members 30:30;
    policy-statement EXPORT3 {
        term t1 {
            from community PEERS;
            then {
                local-preference 200;
                accept;
            }
        }
        term t2 {
            then reject;
        }
    }
    policy-statement EXPORT4 {
        term t1 {
            from community CUST;
            then reject;
        }
        term t2 {
            then accept;
        }
    }
    policy-statement EXPORT5 {
        term t1 {
            from {
                prefix-list-filter AGG orlonger;
                community PREM;
            }
            then {
                local-preference 300;
                accept;
            }
        }
        term t2 {
            from prefix-list-filter AGG orlonger;
            then {
                local-preference 150;
                accept;
            }
        }
        term t3 {
            then reject;
        }
    }
    policy-statement IMPORT {
        term t1 {
            from prefix-list-filter BOGON orlonger;
            then reject;
        }
        term t2 {
            then accept;
        }
    }
}
routing-options { autonomous-system 65000; }
protocols {
    bgp {
        group peer1 {
            type external;
            peer-as 65001;
            neighbor 192.0.2.1 {
                export EXPORT3;
            }
        }
        group peer2 {
            type external;
            peer-as 65002;
            neighbor 192.0.2.5 {
                export EXPORT4;
            }
        }
        group peer3 {
            type external;
            peer-as 65003;
            neighbor 192.0.2.9 {
                import IMPORT;
                export EXPORT5;
            }
        }
    }
}
"
    .to_string();
    (cisco, juniper)
}
