//! Generator tests: everything must parse, lower, and carry exactly the
//! injected differences when run through Campion.

use campion_cfg::parse_config;
use campion_core::{compare_routers, CampionOptions};
use campion_ir::{lower, RouterIr};

use crate::*;

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).unwrap_or_else(|e| panic!("parse: {e}\n{text}")))
        .unwrap_or_else(|e| panic!("lower: {e}\n{text}"))
}

#[test]
fn capirca_pair_parses_and_is_deterministic() {
    let (c1, j1) = capirca_acl_pair(50, 5, 42);
    let (c2, j2) = capirca_acl_pair(50, 5, 42);
    assert_eq!(c1, c2);
    assert_eq!(j1, j2);
    let (c3, _) = capirca_acl_pair(50, 5, 43);
    assert_ne!(c1, c3, "different seeds differ");
    let rc = load(&c1);
    let rj = load(&j1);
    assert_eq!(rc.acls["ACL-GEN"].rules.len(), 51, "50 rules + final deny");
    assert_eq!(rj.acls["ACL-GEN"].rules.len(), 51);
}

#[test]
fn capirca_zero_diffs_is_equivalent() {
    for seed in [1, 7, 99] {
        let (c, j) = capirca_acl_pair(40, 0, seed);
        let rc = load(&c);
        let rj = load(&j);
        let report = compare_routers(&rc, &rj, &CampionOptions::default());
        assert!(
            report.acl_diffs.is_empty(),
            "seed {seed} should be equivalent:\n{report}"
        );
    }
}

#[test]
fn capirca_injected_diffs_are_found() {
    let (c, j) = capirca_acl_pair(40, 4, 7);
    let rc = load(&c);
    let rj = load(&j);
    let report = compare_routers(&rc, &rj, &CampionOptions::default());
    assert!(
        !report.acl_diffs.is_empty(),
        "injected differences must surface"
    );
}

#[test]
fn university_core_pair_loads() {
    let (c, j) = university_core_pair();
    let rc = load(&c);
    let rj = load(&j);
    assert!(rc.policies.contains_key("EXPORT1"));
    assert!(rj.policies.contains_key("EXPORT1"));
    assert_eq!(rc.static_routes.len(), 2);
    assert_eq!(rj.static_routes.len(), 2);
}

/// Table 8(a), core routers: Export 1 → 5 raw differences, Export 2 → 1.
#[test]
fn university_core_semantic_counts_match_table8() {
    let (c, j) = university_core_pair();
    let rc = load(&c);
    let rj = load(&j);
    let report = compare_routers(&rc, &rj, &CampionOptions::default());
    let count = |name: &str| {
        report
            .route_map_diffs
            .iter()
            .filter(|d| d.name1.contains(name))
            .count()
    };
    assert_eq!(count("EXPORT1"), 5, "{report}");
    assert_eq!(count("EXPORT2"), 1, "{report}");
}

/// Table 8(b): two classes of static-route differences and one BGP
/// properties class (send-community).
#[test]
fn university_core_structural_matches_table8() {
    let (c, j) = university_core_pair();
    let rc = load(&c);
    let rj = load(&j);
    let report = compare_routers(&rc, &rj, &CampionOptions::default());
    let statics: Vec<_> = report
        .structural
        .iter()
        .filter(|s| s.component == "Static Routes")
        .collect();
    // Class 1: same prefix, different attributes (10.50/16).
    assert!(statics
        .iter()
        .any(|s| s.key == "10.50.0.0/16" && s.side == campion_core::FindingSide::Both));
    // Class 2: present in one router only (both directions).
    assert!(statics
        .iter()
        .any(|s| s.key == "10.1.1.2/31" && s.side == campion_core::FindingSide::OnlyFirst));
    assert!(statics
        .iter()
        .any(|s| s.key == "10.60.0.0/16" && s.side == campion_core::FindingSide::OnlySecond));
    // send-community latent difference on both neighbors.
    let sc: Vec<_> = report
        .structural
        .iter()
        .filter(|s| s.key.contains("send-community"))
        .collect();
    assert_eq!(sc.len(), 2, "{report}");
}

/// Table 8(a), border routers: Export 3 → 1, Export 4 → 1, Export 5 → 2,
/// Import → 0.
#[test]
fn university_border_counts_match_table8() {
    let (c, j) = university_border_pair();
    let rc = load(&c);
    let rj = load(&j);
    let report = compare_routers(&rc, &rj, &CampionOptions::default());
    let count = |name: &str| {
        report
            .route_map_diffs
            .iter()
            .filter(|d| d.name1.contains(name))
            .count()
    };
    assert_eq!(count("EXPORT3"), 1, "{report}");
    assert_eq!(count("EXPORT4"), 1, "{report}");
    assert_eq!(count("EXPORT5"), 2, "{report}");
    assert_eq!(count("IMPORT"), 0, "{report}");
}

/// Table 6 row 1: five BGP differences and two static differences across
/// the redundant pairs, nothing else.
#[test]
fn scenario1_counts_match_table6() {
    let pairs = scenario1(8, 1001);
    let mut bgp = 0;
    let mut stat = 0;
    for p in &pairs {
        let rc = load(&p.cisco);
        let rj = load(&p.juniper);
        let report = compare_routers(&rc, &rj, &CampionOptions::default());
        bgp += report.route_map_diffs.len();
        stat += report
            .structural
            .iter()
            .filter(|s| s.component == "Static Routes")
            .count();
        if p.bugs.is_empty() {
            assert!(
                report.is_equivalent(),
                "pair {} should be clean:\n{report}",
                p.name
            );
        }
    }
    assert_eq!(bgp, 5);
    assert_eq!(stat, 2);
}

/// Table 6 row 2: four BGP differences across the replacements; the
/// route-reflector bug is among them.
#[test]
fn scenario2_counts_match_table6() {
    let pairs = scenario2(30, 2002);
    let mut bgp = 0;
    for p in &pairs {
        let rc = load(&p.cisco);
        let rj = load(&p.juniper);
        let report = compare_routers(&rc, &rj, &CampionOptions::default());
        bgp += report.route_map_diffs.len();
        if p.bugs.is_empty() {
            assert!(report.is_equivalent(), "pair {}:\n{report}", p.name);
        }
    }
    assert_eq!(bgp, 4);
    assert!(pairs[0].bugs.iter().any(|b| matches!(
        b,
        InjectedBug::WrongLocalPref {
            on_route_reflector: true,
            ..
        }
    )));
}

/// Table 6 row 3: three ACL differences across the gateways.
#[test]
fn scenario3_counts_match_table6() {
    let pairs = scenario3(5, 20, 3003);
    let mut buggy_pairs = 0;
    for p in &pairs {
        let rc = load(&p.cisco);
        let rj = load(&p.juniper);
        let report = compare_routers(&rc, &rj, &CampionOptions::default());
        if p.bugs.is_empty() {
            assert!(
                report.acl_diffs.is_empty(),
                "pair {} should be clean:\n{report}",
                p.name
            );
        } else {
            assert!(!report.acl_diffs.is_empty(), "pair {}:\n{report}", p.name);
            buggy_pairs += 1;
        }
    }
    assert_eq!(buggy_pairs, 3);
}
