//! The data-center scenarios of §5.1 / Table 6, with seeded bug injection.
//!
//! Each scenario generates Cisco/Juniper configuration pairs shaped like
//! the paper's Clos network roles, then injects the paper's bug classes:
//!
//! * **Scenario 1** (redundant ToR pairs): five missing-BGP-policy
//!   fragments (prefixes absent from an import filter on one side) and two
//!   wrong static next hops.
//! * **Scenario 2** (router replacements): one wrong community number and
//!   three wrong local-preferences, one of them on an iBGP
//!   route-reflector pair — the paper's would-have-been-severe-outage bug.
//! * **Scenario 3** (gateway ACLs): three ACL rule differences.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::capirca;

/// A bug injected into the second (Juniper) side of a pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedBug {
    /// A prefix present in the Cisco import filter is missing on Juniper.
    MissingImportPrefix(String),
    /// The static route for this prefix has a different next hop.
    WrongStaticNextHop(String),
    /// The export policy attaches a different community.
    WrongCommunity {
        /// What Cisco sets.
        expected: String,
        /// What Juniper sets.
        actual: String,
    },
    /// The import policy sets a different local preference.
    WrongLocalPref {
        /// What Cisco sets.
        expected: u32,
        /// What Juniper sets.
        actual: u32,
        /// Whether this pair is the iBGP route-reflector replacement.
        on_route_reflector: bool,
    },
    /// An ACL rule was perturbed (see [`capirca`]).
    AclRuleDiff,
}

/// One generated router pair.
#[derive(Debug, Clone)]
pub struct ScenarioPair {
    /// Role name, e.g. `tor-03`.
    pub name: String,
    /// The Cisco configuration.
    pub cisco: String,
    /// The Juniper configuration.
    pub juniper: String,
    /// Bugs injected into this pair (empty = intended-equivalent).
    pub bugs: Vec<InjectedBug>,
}

fn prefix_str(rng: &mut StdRng) -> String {
    let len = rng.gen_range(16..=24);
    let addr: u32 = rng.gen::<u32>() & (u32::MAX << (32 - len));
    format!("{}/{}", std::net::Ipv4Addr::from(addr), len)
}

/// Parameters of one ToR-style pair.
struct TorParams {
    name: String,
    import_prefixes: Vec<String>,
    export_prefixes: Vec<String>,
    statics: Vec<(String, String)>, // (prefix, next hop)
    local_pref: u32,
    community: String,
    neighbor: String,
    remote_as: u32,
    /// iBGP with route-reflector-client config.
    route_reflector: bool,
}

fn tor_params(rng: &mut StdRng, idx: usize, route_reflector: bool) -> TorParams {
    let import_prefixes: Vec<String> = (0..rng.gen_range(3..6)).map(|_| prefix_str(rng)).collect();
    let export_prefixes: Vec<String> = (0..rng.gen_range(2..4)).map(|_| prefix_str(rng)).collect();
    let statics: Vec<(String, String)> = (0..2)
        .map(|i| {
            (
                prefix_str(rng),
                format!(
                    "10.{}.{}.{}",
                    rng.gen_range(1..200),
                    rng.gen_range(0..200),
                    i + 1
                ),
            )
        })
        .collect();
    TorParams {
        name: format!("tor-{idx:02}"),
        import_prefixes,
        export_prefixes,
        statics,
        local_pref: 100 + 10 * rng.gen_range(1..5) as u32,
        community: format!("65001:{}", rng.gen_range(100..999)),
        neighbor: format!("10.200.{}.2", idx),
        remote_as: if route_reflector { 65001 } else { 65002 },
        route_reflector,
    }
}

fn mask(len: u8) -> String {
    let m = if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    };
    std::net::Ipv4Addr::from(m).to_string()
}

fn split_prefix(p: &str) -> (String, u8) {
    let (a, l) = p.split_once('/').expect("prefix has /");
    (a.to_string(), l.parse().expect("length"))
}

fn render_tor_cisco(p: &TorParams) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "hostname {}-cisco", p.name);
    for pre in &p.import_prefixes {
        let _ = writeln!(o, "ip prefix-list IMPORT-FILTER permit {pre} le 32");
    }
    for pre in &p.export_prefixes {
        let _ = writeln!(o, "ip prefix-list EXPORT-NETS permit {pre} le 32");
    }
    let _ = writeln!(o, "route-map IMPORT permit 10");
    let _ = writeln!(o, " match ip address prefix-list IMPORT-FILTER");
    let _ = writeln!(o, " set local-preference {}", p.local_pref);
    let _ = writeln!(o, "route-map IMPORT deny 20");
    let _ = writeln!(o, "route-map EXPORT permit 10");
    let _ = writeln!(o, " match ip address prefix-list EXPORT-NETS");
    let _ = writeln!(o, " set community {}", p.community);
    let _ = writeln!(o, "route-map EXPORT deny 20");
    for (pre, nh) in &p.statics {
        let (a, l) = split_prefix(pre);
        let _ = writeln!(o, "ip route {a} {} {nh} 5", mask(l));
    }
    let _ = writeln!(o, "router bgp 65001");
    let _ = writeln!(o, " neighbor {} remote-as {}", p.neighbor, p.remote_as);
    let _ = writeln!(o, " neighbor {} route-map IMPORT in", p.neighbor);
    let _ = writeln!(o, " neighbor {} route-map EXPORT out", p.neighbor);
    let _ = writeln!(o, " neighbor {} send-community", p.neighbor);
    if p.route_reflector {
        let _ = writeln!(o, " neighbor {} route-reflector-client", p.neighbor);
    }
    o
}

fn render_tor_juniper(p: &TorParams, bugs: &[InjectedBug]) -> String {
    let missing: Vec<&String> = bugs
        .iter()
        .filter_map(|b| match b {
            InjectedBug::MissingImportPrefix(pre) => Some(pre),
            _ => None,
        })
        .collect();
    let community = bugs
        .iter()
        .find_map(|b| match b {
            InjectedBug::WrongCommunity { actual, .. } => Some(actual.clone()),
            _ => None,
        })
        .unwrap_or_else(|| p.community.clone());
    let local_pref = bugs
        .iter()
        .find_map(|b| match b {
            InjectedBug::WrongLocalPref { actual, .. } => Some(*actual),
            _ => None,
        })
        .unwrap_or(p.local_pref);
    let wrong_nh: Option<&String> = bugs.iter().find_map(|b| match b {
        InjectedBug::WrongStaticNextHop(pre) => Some(pre),
        _ => None,
    });

    let mut o = String::new();
    let _ = writeln!(o, "system {{ host-name {}-juniper; }}", p.name);
    let _ = writeln!(o, "policy-options {{");
    let _ = writeln!(o, "    prefix-list IMPORT-FILTER {{");
    for pre in &p.import_prefixes {
        if !missing.contains(&pre) {
            let _ = writeln!(o, "        {pre};");
        }
    }
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "    prefix-list EXPORT-NETS {{");
    for pre in &p.export_prefixes {
        let _ = writeln!(o, "        {pre};");
    }
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "    community SVC members {community};");
    let _ = writeln!(o, "    policy-statement IMPORT {{");
    let _ = writeln!(o, "        term t1 {{");
    let _ = writeln!(
        o,
        "            from prefix-list-filter IMPORT-FILTER orlonger;"
    );
    let _ = writeln!(o, "            then {{");
    let _ = writeln!(o, "                local-preference {local_pref};");
    let _ = writeln!(o, "                accept;");
    let _ = writeln!(o, "            }}");
    let _ = writeln!(o, "        }}");
    let _ = writeln!(o, "        term t2 {{ then reject; }}");
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "    policy-statement EXPORT {{");
    let _ = writeln!(o, "        term t1 {{");
    let _ = writeln!(
        o,
        "            from prefix-list-filter EXPORT-NETS orlonger;"
    );
    let _ = writeln!(o, "            then {{");
    let _ = writeln!(o, "                community set SVC;");
    let _ = writeln!(o, "                accept;");
    let _ = writeln!(o, "            }}");
    let _ = writeln!(o, "        }}");
    let _ = writeln!(o, "        term t2 {{ then reject; }}");
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "}}");
    let _ = writeln!(o, "routing-options {{");
    let _ = writeln!(o, "    autonomous-system 65001;");
    let _ = writeln!(o, "    static {{");
    for (pre, nh) in &p.statics {
        let nh = if Some(pre) == wrong_nh {
            // Perturb the last octet.
            let mut parts: Vec<u32> = nh.split('.').map(|s| s.parse().expect("octet")).collect();
            parts[3] = (parts[3] + 7) % 250 + 1;
            format!("{}.{}.{}.{}", parts[0], parts[1], parts[2], parts[3])
        } else {
            nh.clone()
        };
        let _ = writeln!(o, "        route {pre} next-hop {nh};");
    }
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "}}");
    let _ = writeln!(o, "protocols {{");
    let _ = writeln!(o, "    bgp {{");
    let _ = writeln!(o, "        group peers {{");
    if p.route_reflector {
        let _ = writeln!(o, "            type internal;");
        let _ = writeln!(o, "            cluster 192.0.2.1;");
    } else {
        let _ = writeln!(o, "            type external;");
        let _ = writeln!(o, "            peer-as {};", p.remote_as);
    }
    let _ = writeln!(o, "            neighbor {} {{", p.neighbor);
    let _ = writeln!(o, "                import IMPORT;");
    let _ = writeln!(o, "                export EXPORT;");
    let _ = writeln!(o, "            }}");
    let _ = writeln!(o, "        }}");
    let _ = writeln!(o, "    }}");
    let _ = writeln!(o, "}}");
    o
}

/// Scenario 1: `pairs` redundant ToR pairs; five of them get a missing
/// import prefix, two get a wrong static next hop (Table 6 row 1).
pub fn scenario1(pairs: usize, seed: u64) -> Vec<ScenarioPair> {
    assert!(pairs >= 7, "need at least 7 pairs to place the 7 bugs");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 0..pairs {
        let params = tor_params(&mut rng, i, false);
        let mut bugs = Vec::new();
        if i < 5 {
            // Missing BGP policy fragment: drop one import prefix.
            let victim =
                params.import_prefixes[rng.gen_range(0..params.import_prefixes.len())].clone();
            bugs.push(InjectedBug::MissingImportPrefix(victim));
        } else if i < 7 {
            let victim = params.statics[rng.gen_range(0..params.statics.len())]
                .0
                .clone();
            bugs.push(InjectedBug::WrongStaticNextHop(victim));
        }
        out.push(ScenarioPair {
            name: params.name.clone(),
            cisco: render_tor_cisco(&params),
            juniper: render_tor_juniper(&params, &bugs),
            bugs,
        });
    }
    out
}

/// Scenario 2: `pairs` router replacements (old Cisco → new Juniper); one
/// gets a wrong community, three get wrong local-prefs — the first of them
/// on the iBGP route-reflector replacement (Table 6 row 2).
pub fn scenario2(pairs: usize, seed: u64) -> Vec<ScenarioPair> {
    assert!(pairs >= 4, "need at least 4 pairs to place the 4 bugs");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 0..pairs {
        // Pair 0 is the route-reflector replacement.
        let params = tor_params(&mut rng, i, i == 0);
        let mut bugs = Vec::new();
        if i == 0 {
            bugs.push(InjectedBug::WrongLocalPref {
                expected: params.local_pref,
                actual: params.local_pref + 50,
                on_route_reflector: true,
            });
        } else if i <= 2 {
            bugs.push(InjectedBug::WrongLocalPref {
                expected: params.local_pref,
                actual: params.local_pref.saturating_sub(10),
                on_route_reflector: false,
            });
        } else if i == 3 {
            let wrong = format!("65001:{}", rng.gen_range(100..999));
            bugs.push(InjectedBug::WrongCommunity {
                expected: params.community.clone(),
                actual: wrong,
            });
        }
        out.push(ScenarioPair {
            name: format!("replace-{i:02}"),
            cisco: render_tor_cisco(&params),
            juniper: render_tor_juniper(&params, &bugs),
            bugs,
        });
    }
    out
}

/// Scenario 3: gateway ACL pairs; three rule differences across the fleet
/// (Table 6 row 3).
pub fn scenario3(pairs: usize, rules_per_acl: usize, seed: u64) -> Vec<ScenarioPair> {
    assert!(pairs >= 3, "need at least 3 pairs to place the 3 bugs");
    let mut out = Vec::new();
    for i in 0..pairs {
        let diffs = usize::from(i < 3);
        let (cisco, juniper) = capirca::capirca_acl_pair(rules_per_acl, diffs, seed + i as u64);
        out.push(ScenarioPair {
            name: format!("gateway-{i:02}"),
            cisco: format!("hostname gateway-{i:02}-cisco\n{cisco}"),
            juniper: format!("system {{ host-name gateway-{i:02}-juniper; }}\n{juniper}"),
            bugs: if diffs > 0 {
                vec![InjectedBug::AclRuleDiff]
            } else {
                Vec::new()
            },
        });
    }
    out
}
