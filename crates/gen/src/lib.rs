//! # campion-gen — synthetic workload generators
//!
//! The paper's evaluation ran on confidential configurations from a
//! production cloud (§5.1) and a university campus (§5.2). This crate
//! regenerates workloads with the same *shape* (see DESIGN.md §1):
//!
//! * [`capirca`] — a Capirca-like random ACL generator emitting matched
//!   Cisco and Juniper ACLs with a controlled number of injected
//!   differences, used for the §5.4 scalability experiment;
//! * [`university`] — the two university router pairs (core and border)
//!   with the exact bug classes of Table 8: prefix-list length semantics,
//!   community any-vs-all, third-clause community match, fall-through
//!   asymmetry, community-regex differences, a missing prefix-list entry,
//!   plus the static-route and send-community structural findings;
//! * [`datacenter`] — the three data-center scenarios of Table 6 with
//!   seeded bug injection: redundant-pair drift (missing import prefixes,
//!   wrong static next hops), router replacement errors (wrong community,
//!   wrong local-prefs, a route-reflector local-pref bug), and gateway ACL
//!   mismatches.
//!
//! All generators are deterministic in their seed, so every table in
//! EXPERIMENTS.md regenerates bit-for-bit.

#![warn(missing_docs)]

pub mod capirca;
pub mod datacenter;
pub mod university;

pub use capirca::capirca_acl_pair;
pub use datacenter::{scenario1, scenario2, scenario3, InjectedBug, ScenarioPair};
pub use university::{university_border_pair, university_core_pair};

#[cfg(test)]
mod tests;
