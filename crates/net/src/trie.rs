//! A binary prefix trie with first-octet bucketing, for the ddNF builder's
//! candidate queries.
//!
//! The ddNF closure and containment passes repeatedly ask, for a prefix
//! `p`: *which stored prefixes are a truncation of `p`, and which are an
//! extension of it?* Only those can intersect `p`'s address block. The trie
//! answers both in one walk: ancestors are collected along `p`'s bit path,
//! and extensions are the subtree hanging under `p`'s node.
//!
//! Real configurations concentrate their prefixes under a handful of first
//! octets, so the top eight levels — where every lookup would walk the same
//! near-empty chain of interior nodes — are collapsed into a flat 256-way
//! bucket array indexed by the first octet (the classic routing-trie
//! layout). Prefixes shorter than `/8` live in a small binary trie of their
//! own; a `/k` query with `k < 8` additionally spans the `2^(8-k)` buckets
//! of its address block, which is a contiguous bucket slice.

use crate::prefix::{mask, Prefix};

/// One binary-trie node: ids stored exactly at this prefix, plus the 0/1
/// subtries.
#[derive(Debug, Default, Clone)]
struct TrieNode {
    ids: Vec<usize>,
    kids: [Option<Box<TrieNode>>; 2],
}

impl TrieNode {
    /// Append every id in this subtree to `out` (order is fixed up by the
    /// caller's final sort).
    fn collect(&self, out: &mut Vec<usize>) {
        out.extend_from_slice(&self.ids);
        for kid in self.kids.iter().flatten() {
            kid.collect(out);
        }
    }
}

/// Bit `depth` of `bits` (bit 0 = most significant), as a child index.
fn step(bits: u32, depth: u8) -> usize {
    ((bits >> (31 - depth)) & 1) as usize
}

/// A set of `(id, Prefix)` entries supporting exact-ancestor and subtree
/// queries in one pass.
#[derive(Debug, Clone)]
pub struct PrefixTrie {
    /// Prefixes of length 0–7, in a plain binary trie from the root.
    short: TrieNode,
    /// Prefixes of length ≥ 8, bucketed by first octet; each bucket is a
    /// binary trie whose root sits at depth 8.
    buckets: Vec<Option<Box<TrieNode>>>,
    len: usize,
}

impl Default for PrefixTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixTrie {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            short: TrieNode::default(),
            buckets: vec![None; 256],
            len: 0,
        }
    }

    /// Number of inserted entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry. Multiple ids may share a prefix.
    pub fn insert(&mut self, id: usize, p: &Prefix) {
        let mut node = if p.len() < 8 {
            &mut self.short
        } else {
            self.buckets[(p.bits() >> 24) as usize].get_or_insert_with(Box::default)
        };
        let mut depth = if p.len() < 8 { 0 } else { 8 };
        while depth < p.len() {
            node = node.kids[step(p.bits(), depth)].get_or_insert_with(Box::default);
            depth += 1;
        }
        node.ids.push(id);
        self.len += 1;
    }

    /// All ids whose prefix is a truncation of `p` (ancestors, including
    /// `p` itself) or an extension of it (the subtree under `p`), in
    /// ascending id order. This is exactly the set of stored prefixes whose
    /// address blocks are nested with `p`'s — a superset of any
    /// intersection/containment partner set.
    pub fn candidates(&self, p: &Prefix) -> Vec<usize> {
        let mut out = Vec::new();
        // Walk the short trie along p's bits: nodes at depth < min(len, 8)
        // are ancestors; reaching depth == len < 8 lands on p's own node,
        // whose whole subtree (still within the short trie) is extensions.
        let mut node = Some(&self.short);
        let mut depth = 0u8;
        while let Some(n) = node {
            if depth == p.len() {
                n.collect(&mut out);
                break;
            }
            out.extend_from_slice(&n.ids);
            if depth == 7 {
                break;
            }
            node = n.kids[step(p.bits(), depth)].as_deref();
            depth += 1;
        }
        if p.len() < 8 {
            // Extensions of length ≥ 8 fill p's whole bucket slice (host
            // bits of p are zero, so the slice starts at p's first octet).
            let lo = (p.bits() >> 24) as usize;
            let hi = ((p.bits() | !mask(p.len())) >> 24) as usize;
            for bucket in self.buckets[lo..=hi].iter().flatten() {
                bucket.collect(&mut out);
            }
        } else if let Some(bucket) = &self.buckets[(p.bits() >> 24) as usize] {
            // Resume the walk inside p's bucket from depth 8.
            let mut node = Some(bucket.as_ref());
            let mut depth = 8u8;
            while let Some(n) = node {
                if depth == p.len() {
                    n.collect(&mut out);
                    break;
                }
                out.extend_from_slice(&n.ids);
                node = n.kids[step(p.bits(), depth)].as_deref();
                depth += 1;
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Reference answer: blocks nested either way.
    fn naive(entries: &[Prefix], q: &Prefix) -> Vec<usize> {
        entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.contains(q) || q.contains(e))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn candidates_match_naive_scan() {
        let entries: Vec<Prefix> = [
            "0.0.0.0/0",
            "0.0.0.0/1",
            "128.0.0.0/1",
            "10.0.0.0/7",
            "10.0.0.0/8",
            "10.0.0.0/9",
            "10.128.0.0/9",
            "10.9.0.0/16",
            "10.9.1.0/24",
            "10.9.1.128/25",
            "10.9.1.200/32",
            "11.0.0.0/8",
            "192.168.0.0/16",
            "192.168.0.0/16", // duplicate prefix, distinct id
        ]
        .iter()
        .map(|s| p(s))
        .collect();
        let mut trie = PrefixTrie::new();
        for (i, e) in entries.iter().enumerate() {
            trie.insert(i, e);
        }
        assert_eq!(trie.len(), entries.len());
        // Query every stored prefix plus a few absent ones.
        let mut queries = entries.clone();
        queries.extend(
            ["10.9.2.0/24", "172.16.0.0/12", "0.0.0.0/32"]
                .iter()
                .map(|s| p(s)),
        );
        for q in &queries {
            assert_eq!(trie.candidates(q), naive(&entries, q), "query {q}");
        }
    }

    #[test]
    fn empty_trie_has_no_candidates() {
        let trie = PrefixTrie::new();
        assert!(trie.is_empty());
        assert!(trie.candidates(&p("10.0.0.0/8")).is_empty());
        assert!(trie.candidates(&p("0.0.0.0/0")).is_empty());
    }
}
