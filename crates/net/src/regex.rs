//! A small regular-expression engine for community matching.
//!
//! Cisco *expanded* community lists and Juniper community definitions can
//! match communities by regular expression; the paper's university study
//! found real bugs in two such regexes (Export 3 and Export 4 in Table 8a).
//! The analysis therefore needs to evaluate community regexes — and the
//! allowed dependency set has no regex crate, so this module implements the
//! needed subset from scratch:
//!
//! * literals, `.`, character classes `[abc]`, `[^abc]`, ranges `[0-9]`
//! * repetition `*`, `+`, `?`
//! * alternation `|` and grouping `( )`
//! * anchors `^` and `$`
//! * the router-specific `_` metacharacter, which matches a delimiter
//!   (start, end, space, comma, colon or brace) as used in community
//!   regexes on both vendors
//!
//! Matching is unanchored (`find`-style) unless anchors are present,
//! mirroring router behavior. The implementation compiles to a Thompson
//! NFA and simulates it with a breadth-first state set, so matching is
//! linear in the input — no catastrophic backtracking, which keeps the
//! generators free to produce adversarial patterns.

use std::collections::BTreeSet;
use std::fmt;

use crate::prefix::ParseNetError;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    /// Original pattern, for display and for canonical atom keys.
    pattern: String,
    prog: Vec<Inst>,
}

/// One NFA instruction (Thompson construction, program counter style).
#[derive(Debug, Clone)]
enum Inst {
    /// Match one character against a class, then advance.
    Char(CharClass),
    /// Unconditional jump.
    Jmp(usize),
    /// Fork execution to both targets.
    Split(usize, usize),
    /// Match only at the start of the input.
    AssertStart,
    /// Match only at the end of the input.
    AssertEnd,
    /// Accept.
    Accept,
}

/// A set of characters, as ranges over `char`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CharClass {
    negated: bool,
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn single(c: char) -> Self {
        CharClass {
            negated: false,
            ranges: vec![(c, c)],
        }
    }

    fn any() -> Self {
        CharClass {
            negated: true,
            ranges: vec![],
        }
    }

    /// The `_` delimiter class (space, comma, colon, braces).
    fn delimiter() -> Self {
        CharClass {
            negated: false,
            ranges: vec![(' ', ' '), (',', ','), (':', ':'), ('{', '{'), ('}', '}')],
        }
    }

    fn matches(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

/// Parsed AST prior to compilation.
#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(CharClass),
    Start,
    End,
    /// `_`: delimiter char OR start OR end.
    Delim,
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

struct PatParser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> PatParser<'a> {
    fn err(&self, msg: &str) -> ParseNetError {
        ParseNetError::new(format!("regex {:?}: {msg}", self.pattern))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Ast, ParseNetError> {
        let mut node = self.concat()?;
        while self.peek() == Some('|') {
            self.bump();
            let rhs = self.concat()?;
            node = Ast::Alt(Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    /// concat := repeat*
    fn concat(&mut self) -> Result<Ast, ParseNetError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("len checked"),
            _ => Ast::Concat(items),
        })
    }

    /// repeat := atom ('*' | '+' | '?')*
    fn repeat(&mut self) -> Result<Ast, ParseNetError> {
        let mut node = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    node = Ast::Star(Box::new(node));
                }
                Some('+') => {
                    self.bump();
                    node = Ast::Plus(Box::new(node));
                }
                Some('?') => {
                    self.bump();
                    node = Ast::Opt(Box::new(node));
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn atom(&mut self) -> Result<Ast, ParseNetError> {
        match self.bump() {
            Some('(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed '('"));
                }
                Ok(inner)
            }
            Some('[') => self.char_class(),
            Some('.') => Ok(Ast::Char(CharClass::any())),
            Some('^') => Ok(Ast::Start),
            Some('$') => Ok(Ast::End),
            Some('_') => Ok(Ast::Delim),
            Some('\\') => {
                let c = self.bump().ok_or_else(|| self.err("trailing backslash"))?;
                Ok(match c {
                    'd' => Ast::Char(CharClass {
                        negated: false,
                        ranges: vec![('0', '9')],
                    }),
                    other => Ast::Char(CharClass::single(other)),
                })
            }
            Some(c) if "*+?)".contains(c) => Err(self.err(&format!("unexpected {c:?}"))),
            Some(c) => Ok(Ast::Char(CharClass::single(c))),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn char_class(&mut self) -> Result<Ast, ParseNetError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            match self.bump() {
                Some(']') if !ranges.is_empty() => break,
                Some(c) => {
                    let c = if c == '\\' {
                        self.bump().ok_or_else(|| self.err("trailing backslash"))?
                    } else {
                        c
                    };
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).copied() != Some(']')
                        && self.chars.get(self.pos + 1).is_some()
                    {
                        self.bump(); // '-'
                        let hi = self.bump().expect("checked above");
                        if hi < c {
                            return Err(self.err(&format!("bad range {c}-{hi}")));
                        }
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
                None => return Err(self.err("unclosed '['")),
            }
        }
        Ok(Ast::Char(CharClass { negated, ranges }))
    }
}

/// Compile the AST to NFA instructions appended to `prog`.
fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => prog.push(Inst::Char(c.clone())),
        Ast::Start => prog.push(Inst::AssertStart),
        Ast::End => prog.push(Inst::AssertEnd),
        Ast::Delim => {
            // delimiter char OR start-of-input OR end-of-input
            // Split(char-branch, assert-branch)
            let split = prog.len();
            prog.push(Inst::Split(0, 0)); // patched
            let char_pc = prog.len();
            prog.push(Inst::Char(CharClass::delimiter()));
            let jmp_over = prog.len();
            prog.push(Inst::Jmp(0)); // patched
            let assert_pc = prog.len();
            // start OR end: another split
            prog.push(Inst::Split(assert_pc + 1, assert_pc + 3));
            prog.push(Inst::AssertStart);
            prog.push(Inst::Jmp(0)); // patched
            prog.push(Inst::AssertEnd);
            let end = prog.len();
            if let Inst::Split(a, b) = &mut prog[split] {
                *a = char_pc;
                *b = assert_pc;
            }
            if let Inst::Jmp(t) = &mut prog[jmp_over] {
                *t = end;
            }
            if let Inst::Jmp(t) = &mut prog[assert_pc + 2] {
                *t = end;
            }
        }
        Ast::Concat(items) => {
            for i in items {
                compile(i, prog);
            }
        }
        Ast::Alt(a, b) => {
            let split = prog.len();
            prog.push(Inst::Split(0, 0));
            let a_start = prog.len();
            compile(a, prog);
            let jmp = prog.len();
            prog.push(Inst::Jmp(0));
            let b_start = prog.len();
            compile(b, prog);
            let end = prog.len();
            if let Inst::Split(x, y) = &mut prog[split] {
                *x = a_start;
                *y = b_start;
            }
            if let Inst::Jmp(t) = &mut prog[jmp] {
                *t = end;
            }
        }
        Ast::Star(inner) => {
            let split = prog.len();
            prog.push(Inst::Split(0, 0));
            let body = prog.len();
            compile(inner, prog);
            prog.push(Inst::Jmp(split));
            let end = prog.len();
            if let Inst::Split(x, y) = &mut prog[split] {
                *x = body;
                *y = end;
            }
        }
        Ast::Plus(inner) => {
            let body = prog.len();
            compile(inner, prog);
            let split = prog.len();
            prog.push(Inst::Split(body, 0));
            let end = prog.len();
            if let Inst::Split(_, y) = &mut prog[split] {
                *y = end;
            }
        }
        Ast::Opt(inner) => {
            let split = prog.len();
            prog.push(Inst::Split(0, 0));
            let body = prog.len();
            compile(inner, prog);
            let end = prog.len();
            if let Inst::Split(x, y) = &mut prog[split] {
                *x = body;
                *y = end;
            }
        }
    }
}

impl Regex {
    /// Compile a pattern.
    pub fn new(pattern: &str) -> Result<Self, ParseNetError> {
        let mut p = PatParser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        };
        let ast = p.alternation()?;
        if p.pos != p.chars.len() {
            return Err(p.err("unexpected ')'"));
        }
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Accept);
        Ok(Regex {
            pattern: pattern.to_string(),
            prog,
        })
    }

    /// The original pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the pattern match anywhere in `input` (router `find` semantics)?
    pub fn is_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        // Try every start offset; the NFA simulation per offset is linear.
        for start in 0..=chars.len() {
            if self.match_at(&chars, start) {
                return true;
            }
        }
        false
    }

    /// Run the NFA from input offset `start`.
    fn match_at(&self, input: &[char], start: usize) -> bool {
        // Breadth-first simulation: the set of live program counters.
        let mut current: BTreeSet<usize> = BTreeSet::new();
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        self.add_state(&mut current, &mut visited, 0, start, input.len());
        let mut pos = start;
        loop {
            if current
                .iter()
                .any(|&pc| matches!(self.prog[pc], Inst::Accept))
            {
                return true;
            }
            if pos >= input.len() || current.is_empty() {
                return false;
            }
            let c = input[pos];
            let mut next: BTreeSet<usize> = BTreeSet::new();
            let mut next_visited: BTreeSet<usize> = BTreeSet::new();
            for &pc in &current {
                if let Inst::Char(class) = &self.prog[pc] {
                    if class.matches(c) {
                        self.add_state(&mut next, &mut next_visited, pc + 1, pos + 1, input.len());
                    }
                }
            }
            current = next;
            pos += 1;
        }
    }

    /// Add `pc` and everything reachable through control instructions,
    /// resolving anchors against the current position. `visited` guards
    /// against epsilon cycles (e.g. from `(a*)*` patterns).
    fn add_state(
        &self,
        set: &mut BTreeSet<usize>,
        visited: &mut BTreeSet<usize>,
        pc: usize,
        pos: usize,
        len: usize,
    ) {
        if !visited.insert(pc) {
            return;
        }
        match &self.prog[pc] {
            Inst::Jmp(t) => self.add_state(set, visited, *t, pos, len),
            Inst::Split(a, b) => {
                let (a, b) = (*a, *b);
                self.add_state(set, visited, a, pos, len);
                self.add_state(set, visited, b, pos, len);
            }
            Inst::AssertStart => {
                if pos == 0 {
                    self.add_state(set, visited, pc + 1, pos, len);
                }
            }
            Inst::AssertEnd => {
                if pos == len {
                    self.add_state(set, visited, pc + 1, pos, len);
                }
            }
            Inst::Char(_) | Inst::Accept => {
                set.insert(pc);
            }
        }
    }
}

impl Regex {
    /// (For the DFA layer.) Add `pc`'s closure into `set`, resolving
    /// anchors by the given position flags instead of concrete offsets.
    pub(crate) fn closure_into(
        &self,
        set: &mut BTreeSet<usize>,
        pc: usize,
        at_start: bool,
        at_end: bool,
    ) {
        let mut visited = BTreeSet::new();
        self.closure_rec(set, &mut visited, pc, at_start, at_end);
    }

    fn closure_rec(
        &self,
        set: &mut BTreeSet<usize>,
        visited: &mut BTreeSet<usize>,
        pc: usize,
        at_start: bool,
        at_end: bool,
    ) {
        if !visited.insert(pc) {
            return;
        }
        match &self.prog[pc] {
            Inst::Jmp(t) => self.closure_rec(set, visited, *t, at_start, at_end),
            Inst::Split(a, b) => {
                let (a, b) = (*a, *b);
                self.closure_rec(set, visited, a, at_start, at_end);
                self.closure_rec(set, visited, b, at_start, at_end);
            }
            Inst::AssertStart => {
                if at_start {
                    self.closure_rec(set, visited, pc + 1, at_start, at_end);
                }
            }
            Inst::AssertEnd => {
                if at_end {
                    self.closure_rec(set, visited, pc + 1, at_start, at_end);
                } else {
                    // Park the thread: end-of-input may still arrive, at
                    // which point `state_accepts` re-closes with the end
                    // flag set.
                    set.insert(pc);
                }
            }
            Inst::Char(_) | Inst::Accept => {
                set.insert(pc);
            }
        }
    }

    /// (For the DFA layer.) Does the `Char` instruction at `pc` consume `c`?
    pub(crate) fn char_step(&self, pc: usize, c: char) -> bool {
        matches!(&self.prog[pc], Inst::Char(class) if class.matches(c))
    }

    /// (For the DFA layer.) Does a state set contain an acceptance, given
    /// the end-of-input flag? (Re-closes the set so `AssertEnd` barriers
    /// resolve.)
    pub(crate) fn state_accepts(&self, set: &BTreeSet<usize>, at_end: bool) -> bool {
        let mut closed = BTreeSet::new();
        for &pc in set {
            if pc == usize::MAX {
                continue;
            }
            self.closure_into(&mut closed, pc, false, at_end);
        }
        closed
            .iter()
            .any(|&pc| matches!(self.prog[pc], Inst::Accept))
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/", self.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().is_match(s)
    }

    #[test]
    fn literals_and_find_semantics() {
        assert!(m("10:10", "10:10"));
        assert!(m("0:1", "10:10"), "unanchored: finds 0:1 inside 10:10");
        assert!(!m("10:11", "10:10"));
    }

    #[test]
    fn anchors() {
        assert!(m("^10:10$", "10:10"));
        assert!(!m("^0:1", "10:10"));
        assert!(!m("10:1$", "10:10"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }

    #[test]
    fn classes_and_dot() {
        assert!(m("^6500[0-9]:.*$", "65003:777"));
        assert!(!m("^6500[0-9]:.*$", "64003:777"));
        assert!(m("^[^0]", "10:10"));
        assert!(!m("^[^1]", "10:10"));
        assert!(m("1.3", "1x3"));
        assert!(!m("1.3", "13"));
    }

    #[test]
    fn repetition() {
        assert!(m("^10*$", "1"));
        assert!(m("^10*$", "1000"));
        assert!(!m("^10+$", "1"));
        assert!(m("^10?:", "1:5"));
        assert!(m("^10?:", "10:5"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(10|20):30$", "10:30"));
        assert!(m("^(10|20):30$", "20:30"));
        assert!(!m("^(10|20):30$", "30:30"));
        assert!(m("^1(2(3|4))*5$", "123245"));
        assert!(!m("^1(2(3|4))*5$", "12325 "));
    }

    #[test]
    fn cisco_underscore_delimiter() {
        // `_65000:` matches at start or after a delimiter.
        assert!(m("_65000:100_", "65000:100"));
        assert!(m("_65000:100_", "1:2 65000:100 3:4"));
        assert!(!m("_65000:100_", "165000:1001"));
        assert!(m("_65000:.*_", "65000:42"));
    }

    #[test]
    fn escapes() {
        assert!(m("^\\d+:\\d+$", "65000:1"));
        assert!(!m("^\\d+$", "1:2"));
        assert!(m("^a\\*b$", "a*b"));
        assert!(!m("^a\\*b$", "aab"));
    }

    #[test]
    fn pathological_patterns_terminate_quickly() {
        // Classic backtracking blowup input; NFA simulation is linear.
        let pat = "^(a*)*b$";
        let input = "a".repeat(200);
        assert!(!m(pat, &input));
        assert!(m("(a|a)*$", &"a".repeat(100)));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new("[").is_err());
        assert!(Regex::new("a)").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn empty_class_edge_cases() {
        // ']' right after '[' is a literal member, not a terminator.
        assert!(m("^[]]$", "]"));
        assert!(m("^[-a]$", "-"));
    }
}
