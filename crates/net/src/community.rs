//! BGP community values.

use std::fmt;
use std::str::FromStr;

use crate::prefix::ParseNetError;

/// A standard BGP community, written `ASN:value` (e.g. `10:10`).
///
/// ```
/// use campion_net::Community;
/// let c: Community = "10:11".parse().unwrap();
/// assert_eq!(c.to_string(), "10:11");
/// assert_eq!(c.as_u32(), (10 << 16) | 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Community {
    /// High 16 bits — conventionally the AS number.
    pub asn: u16,
    /// Low 16 bits — the operator-assigned value.
    pub value: u16,
}

impl Community {
    /// Construct from the two 16-bit halves.
    pub fn new(asn: u16, value: u16) -> Self {
        Community { asn, value }
    }

    /// The packed 32-bit wire representation.
    pub fn as_u32(&self) -> u32 {
        (u32::from(self.asn) << 16) | u32::from(self.value)
    }

    /// Unpack from the 32-bit wire representation.
    pub fn from_u32(v: u32) -> Self {
        Community {
            asn: (v >> 16) as u16,
            value: (v & 0xffff) as u16,
        }
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn, self.value)
    }
}

impl FromStr for Community {
    type Err = ParseNetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, v) = s
            .split_once(':')
            .ok_or_else(|| ParseNetError::new(format!("missing ':' in community {s:?}")))?;
        let asn: u16 = a
            .parse()
            .map_err(|_| ParseNetError::new(format!("bad community ASN in {s:?}")))?;
        let value: u16 = v
            .parse()
            .map_err(|_| ParseNetError::new(format!("bad community value in {s:?}")))?;
        Ok(Community { asn, value })
    }
}
