//! Data-plane flow descriptions used by ACL matching.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::prefix::ParseNetError;

/// An IP protocol selector for ACL rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProtocol {
    /// Matches every protocol (Cisco `ip`, Juniper no `protocol` clause).
    Any,
    /// TCP (protocol 6).
    Tcp,
    /// UDP (protocol 17).
    Udp,
    /// ICMP (protocol 1).
    Icmp,
    /// Any other protocol, by number.
    Other(u8),
}

impl IpProtocol {
    /// Protocol number, or `None` for [`IpProtocol::Any`].
    pub fn number(&self) -> Option<u8> {
        match self {
            IpProtocol::Any => None,
            IpProtocol::Tcp => Some(6),
            IpProtocol::Udp => Some(17),
            IpProtocol::Icmp => Some(1),
            IpProtocol::Other(n) => Some(*n),
        }
    }

    /// Canonicalize a protocol number into a named variant when one exists.
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }

    /// Does this selector match a concrete protocol number?
    pub fn matches(&self, number: u8) -> bool {
        match self.number() {
            None => true,
            Some(n) => n == number,
        }
    }

    /// Whether rules with this selector may carry port qualifiers.
    pub fn has_ports(&self) -> bool {
        matches!(self, IpProtocol::Tcp | IpProtocol::Udp)
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Any => write!(f, "ip"),
            IpProtocol::Tcp => write!(f, "tcp"),
            IpProtocol::Udp => write!(f, "udp"),
            IpProtocol::Icmp => write!(f, "icmp"),
            IpProtocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

impl FromStr for IpProtocol {
    type Err = ParseNetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "ip" | "any" | "inet" => IpProtocol::Any,
            "tcp" => IpProtocol::Tcp,
            "udp" => IpProtocol::Udp,
            "icmp" => IpProtocol::Icmp,
            other => IpProtocol::Other(
                other
                    .parse()
                    .map_err(|_| ParseNetError::new(format!("unknown IP protocol {other:?}")))?,
            ),
        })
    }
}

/// An inclusive TCP/UDP port interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRange {
    /// Lowest port, inclusive.
    pub lo: u16,
    /// Highest port, inclusive.
    pub hi: u16,
}

impl PortRange {
    /// The full port space `0-65535`.
    pub const ANY: PortRange = PortRange {
        lo: 0,
        hi: u16::MAX,
    };

    /// Construct an interval.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: u16, hi: u16) -> Self {
        assert!(lo <= hi, "empty port range {lo}-{hi}");
        PortRange { lo, hi }
    }

    /// A single port.
    pub fn exact(port: u16) -> Self {
        PortRange { lo: port, hi: port }
    }

    /// Does the interval include `port`?
    pub fn contains(&self, port: u16) -> bool {
        self.lo <= port && port <= self.hi
    }

    /// Is this the unconstrained interval?
    pub fn is_any(&self) -> bool {
        *self == PortRange::ANY
    }
}

impl fmt::Display for PortRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            write!(f, "any")
        } else if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}-{}", self.lo, self.hi)
        }
    }
}

/// A concrete data-plane packet as far as ACLs are concerned: the classic
/// 5-tuple. Used by the concrete ACL interpreter that differential tests run
/// against the symbolic encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flow {
    /// Source address.
    pub src_ip: Ipv4Addr,
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// IP protocol number.
    pub protocol: u8,
    /// Source port (meaningful for TCP/UDP only; zero otherwise).
    pub src_port: u16,
    /// Destination port (meaningful for TCP/UDP only; zero otherwise).
    pub dst_port: u16,
}

impl Flow {
    /// A TCP flow.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        Flow {
            src_ip,
            dst_ip,
            protocol: 6,
            src_port,
            dst_port,
        }
    }

    /// A UDP flow.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        Flow {
            src_ip,
            dst_ip,
            protocol: 17,
            src_port,
            dst_port,
        }
    }

    /// An ICMP flow (ports zero).
    pub fn icmp(src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Self {
        Flow {
            src_ip,
            dst_ip,
            protocol: 1,
            src_port: 0,
            dst_port: 0,
        }
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            IpProtocol::from_number(self.protocol),
            self.src_ip,
            self.src_port,
            self.dst_ip,
            self.dst_port
        )
    }
}
