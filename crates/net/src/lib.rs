//! # campion-net — network primitives
//!
//! Shared vocabulary types for the Campion reproduction: IPv4 prefixes,
//! *prefix ranges* (the §3.2 primitive that `HeaderLocalize` manipulates),
//! BGP communities, Cisco wildcard masks, port ranges and IP protocols.
//!
//! Everything here is plain data with value semantics — no I/O, no unsafe —
//! so the parsing, symbolic and diffing layers can share it freely.

#![warn(missing_docs)]

mod community;
mod flow;
mod prefix;
mod range;
pub mod regex;
pub mod regex_dfa;
mod trie;
mod wildcard;

pub use community::Community;
pub use flow::{Flow, IpProtocol, PortRange};
pub use prefix::{ParseNetError, Prefix};
pub use range::PrefixRange;
pub use trie::PrefixTrie;
pub use wildcard::WildcardMask;

#[cfg(test)]
mod tests;
