//! Language-level decisions for the regex engine: subset construction and
//! product emptiness checks.
//!
//! The symbolic layer models each community regex with an *unknown-match*
//! atom ("carries some community outside the literal universe matching this
//! pattern"). Treating those atoms as independent overapproximates: two
//! overlapping regexes would always be flagged as potentially different.
//! This module decides, once per compared pair,
//!
//! * [`language_subset_except`]: `L(a) ⊆ L(b) ∪ lits` — when it holds, any
//!   unknown community matching `a` also matches `b`, so the atoms gain an
//!   implication constraint; and
//! * [`matches_beyond`]: `L(a) ⊈ lits` — when it fails, the unknown atom is
//!   unsatisfiable and pinned to false.
//!
//! Semantics mirror router behavior ([`Regex::is_match`]'s find-semantics):
//! a string is in the language when the pattern matches anywhere inside it.
//! The construction works on the compiled NFA: a DFA state is the set of
//! live program counters (plus a sticky "already matched" marker for
//! unanchored acceptance), stepped per concrete character over the
//! printable-ASCII alphabet that community strings inhabit.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::regex::Regex;

/// The explored alphabet: printable ASCII. Community strings only use
/// digits and `:`, but regexes may mention any printable character.
fn alphabet() -> impl Iterator<Item = char> {
    (0x20u8..0x7f).map(|b| b as char)
}

/// A determinized view of a compiled regex under find-semantics.
/// `usize::MAX` in a state set is the sticky accept marker.
#[derive(Debug)]
pub(crate) struct SearchDfa<'r> {
    re: &'r Regex,
}

/// One DFA state: the set of live NFA positions.
pub(crate) type State = BTreeSet<usize>;

const MATCHED: usize = usize::MAX;

impl<'r> SearchDfa<'r> {
    pub(crate) fn new(re: &'r Regex) -> Self {
        SearchDfa { re }
    }

    /// The start state: closure of pc 0 at string start.
    pub(crate) fn start(&self) -> State {
        let mut s = State::new();
        self.re.closure_into(&mut s, 0, true, false);
        if self.re.state_accepts(&s, false) {
            s.insert(MATCHED);
        }
        s
    }

    /// Step the state over one character. Injects a fresh attempt at the
    /// new position (unanchored search restarts at every offset).
    pub(crate) fn step(&self, state: &State, c: char) -> State {
        let mut next = State::new();
        if state.contains(&MATCHED) {
            next.insert(MATCHED);
        }
        for &pc in state {
            if pc == MATCHED {
                continue;
            }
            if self.re.char_step(pc, c) {
                self.re.closure_into(&mut next, pc + 1, false, false);
            }
        }
        // Fresh attempt starting after this character.
        self.re.closure_into(&mut next, 0, false, false);
        if self.re.state_accepts(&next, false) {
            next.insert(MATCHED);
        }
        next
    }

    /// Does the DFA accept when the input ends in this state?
    pub(crate) fn accepts_at_end(&self, state: &State) -> bool {
        state.contains(&MATCHED) || self.re.state_accepts(state, true)
    }
}

/// A trie DFA over a finite string set (the literal communities).
#[derive(Debug, Default)]
struct Trie {
    /// `nodes[i]` maps a character to the next node.
    nodes: Vec<HashMap<char, usize>>,
    accepting: Vec<bool>,
}

impl Trie {
    fn new(strings: &[String]) -> Self {
        let mut t = Trie {
            nodes: vec![HashMap::new()],
            accepting: vec![false],
        };
        for s in strings {
            let mut cur = 0;
            for c in s.chars() {
                cur = match t.nodes[cur].get(&c) {
                    Some(&n) => n,
                    None => {
                        t.nodes.push(HashMap::new());
                        t.accepting.push(false);
                        let n = t.nodes.len() - 1;
                        t.nodes[cur].insert(c, n);
                        n
                    }
                };
            }
            t.accepting[cur] = true;
        }
        t
    }

    /// Step; `None` is the dead state.
    fn step(&self, state: Option<usize>, c: char) -> Option<usize> {
        self.nodes.get(state?)?.get(&c).copied()
    }

    fn accepts(&self, state: Option<usize>) -> bool {
        state.is_some_and(|s| self.accepting[s])
    }
}

/// Is `L(a) ⊆ L(b) ∪ lits`? (Both languages under find-semantics.)
///
/// Decides by BFS over the product of the two search DFAs and the literal
/// trie, looking for a string accepted by `a`, rejected by `b`, and not a
/// literal. The search is bounded by the product's state space, which is
/// finite; community patterns yield tiny automata.
pub fn language_subset_except(a: &Regex, b: &Regex, lits: &[String]) -> bool {
    let da = SearchDfa::new(a);
    let db = SearchDfa::new(b);
    let trie = Trie::new(lits);
    let start = (da.start(), db.start(), Some(0usize));
    let mut seen: BTreeSet<(State, State, Option<usize>)> = BTreeSet::new();
    let mut queue: VecDeque<(State, State, Option<usize>)> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back(start);
    while let Some((sa, sb, st)) = queue.pop_front() {
        if da.accepts_at_end(&sa) && !db.accepts_at_end(&sb) && !trie.accepts(st) {
            return false; // counterexample string reaches this state
        }
        for c in alphabet() {
            let na = da.step(&sa, c);
            let nb = db.step(&sb, c);
            let nt = trie.step(st, c);
            let key = (na, nb, nt);
            if seen.insert(key.clone()) {
                queue.push_back(key);
            }
        }
    }
    true
}

/// Is `L(a) ⊆ lits`? I.e. can the regex match anything beyond the given
/// literal strings? Returns `true` when some non-literal string matches.
pub fn matches_beyond(a: &Regex, lits: &[String]) -> bool {
    // L(a) ⊆ lits ⇔ L(a) ⊆ ∅ ∪ lits; reuse the product with an
    // empty-language "b": `x^x` requires a start-of-input after consuming a
    // character, which no string satisfies.
    let empty = Regex::new("x^x").expect("valid pattern");
    !language_subset_except(a, &empty, lits)
}

/// Are the two languages equal (under find-semantics)?
pub fn language_equal(a: &Regex, b: &Regex) -> bool {
    language_subset_except(a, b, &[]) && language_subset_except(b, a, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn subset_basic() {
        assert!(language_subset_except(&re("^10:10$"), &re("^10:1.$"), &[]));
        assert!(!language_subset_except(&re("^10:1.$"), &re("^10:10$"), &[]));
        assert!(language_subset_except(&re("^65000:1$"), &re("65000"), &[]));
    }

    #[test]
    fn subset_with_find_semantics() {
        // Unanchored `0:1` matches a superset of `^10:10$` matches? Every
        // string matching ^10:10$ (exactly "10:10") contains "0:1".
        assert!(language_subset_except(&re("^10:10$"), &re("0:1"), &[]));
        assert!(!language_subset_except(&re("0:1"), &re("^10:10$"), &[]));
    }

    #[test]
    fn subset_modulo_literals() {
        // ^10:1[01]$ ⊆ ^10:10$ ∪ {"10:11"}.
        assert!(language_subset_except(
            &re("^10:1[01]$"),
            &re("^10:10$"),
            &["10:11".to_string()]
        ));
        assert!(!language_subset_except(
            &re("^10:1[012]$"),
            &re("^10:10$"),
            &["10:11".to_string()]
        ));
    }

    #[test]
    fn equality() {
        assert!(language_equal(&re("^(10|20):5$"), &re("^(20|10):5$")));
        assert!(language_equal(&re("^a+$"), &re("^aa*$")));
        assert!(!language_equal(&re("^a+$"), &re("^a*$")));
    }

    #[test]
    fn matches_beyond_literals() {
        assert!(
            !matches_beyond(&re("^10:10$"), &["10:10".to_string()]),
            "finite language covered by the literal"
        );
        assert!(matches_beyond(&re("^10:1.$"), &["10:10".to_string()]));
        assert!(matches_beyond(&re("^10:10*$"), &["10:10".to_string()]));
        assert!(!matches_beyond(
            &re("^10:(10|11)$"),
            &["10:10".to_string(), "10:11".to_string()]
        ));
    }

    #[test]
    fn underscore_delimiter_in_language_checks() {
        // `_65000:` under find-semantics: matches strings where 65000: is
        // at start or after a delimiter.
        assert!(language_subset_except(
            &re("^65000:1$"),
            &re("_65000:"),
            &[]
        ));
        assert!(!language_subset_except(
            &re("_65000:"),
            &re("^65000:1$"),
            &[]
        ));
    }
}
