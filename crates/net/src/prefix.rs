//! IPv4 prefixes.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Errors produced when parsing network primitives from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetError {
    /// Human-readable description of what failed to parse.
    pub message: String,
}

impl ParseNetError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseNetError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseNetError {}

/// An IPv4 prefix: an address plus a significant-bit count.
///
/// Prefixes are stored canonically — host bits (beyond `len`) are zeroed at
/// construction — so structural equality is semantic equality.
///
/// ```
/// use campion_net::Prefix;
/// let p: Prefix = "10.9.1.0/24".parse().unwrap();
/// assert_eq!(p.len(), 24);
/// assert!(p.contains_addr("10.9.1.200".parse().unwrap()));
/// assert!(!p.contains_addr("10.10.0.1".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// Construct from an address and length, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        let bits = u32::from(addr) & mask(len);
        Prefix { bits, len }
    }

    /// Construct a host prefix (`/32`) for a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Prefix::new(addr, 32)
    }

    /// The network address.
    pub fn addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The raw 32-bit network address (host bits zero).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True only for the zero-length default prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The subnet mask as an address (e.g. `/24` → `255.255.255.0`).
    pub fn netmask(&self) -> Ipv4Addr {
        Ipv4Addr::from(mask(self.len))
    }

    /// Build from an address and a dotted-quad subnet mask
    /// (`255.255.255.254` → `/31`). Non-contiguous masks are rejected.
    pub fn from_netmask(addr: Ipv4Addr, netmask: Ipv4Addr) -> Result<Self, ParseNetError> {
        let m = u32::from(netmask);
        let len = m.count_ones() as u8;
        if m != mask(len) {
            return Err(ParseNetError::new(format!(
                "non-contiguous subnet mask {netmask}"
            )));
        }
        Ok(Prefix::new(addr, len))
    }

    /// Does this prefix cover `addr`?
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & mask(self.len) == self.bits
    }

    /// Does this prefix cover every address of `other`? (I.e. `other` is the
    /// same or a more-specific prefix.)
    pub fn contains(&self, other: &Prefix) -> bool {
        self.len <= other.len && other.bits & mask(self.len) == self.bits
    }
}

/// The all-ones mask for the first `len` bits.
pub(crate) fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParseNetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = match s.split_once('/') {
            Some((a, l)) => {
                let len: u8 = l
                    .parse()
                    .map_err(|_| ParseNetError::new(format!("bad prefix length in {s:?}")))?;
                if len > 32 {
                    return Err(ParseNetError::new(format!("prefix length {len} > 32")));
                }
                (a, len)
            }
            None => (s, 32),
        };
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| ParseNetError::new(format!("bad IPv4 address in {s:?}")))?;
        Ok(Prefix::new(addr, len))
    }
}
