//! Cisco wildcard masks.

use std::fmt;
use std::net::Ipv4Addr;

use crate::prefix::Prefix;

/// A Cisco ACL address matcher: a base address plus a *wildcard* mask whose
/// **set** bits are "don't care". `10.0.0.0 0.0.255.255` matches
/// `10.0.0.0/16`; unlike subnet masks, wildcard bits may be non-contiguous
/// (e.g. `0.0.1.255` matches two adjacent /24s, as in Table 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WildcardMask {
    /// The base address; bits under a set wildcard bit are ignored.
    pub addr: u32,
    /// Wildcard bits: 1 = ignore this bit.
    pub wildcard: u32,
}

impl WildcardMask {
    /// Matches every address.
    pub const ANY: WildcardMask = WildcardMask {
        addr: 0,
        wildcard: u32::MAX,
    };

    /// Construct from address and wildcard; "care" bits of the address are
    /// kept, ignored bits are normalized to zero so equality is semantic.
    pub fn new(addr: Ipv4Addr, wildcard: Ipv4Addr) -> Self {
        let w = u32::from(wildcard);
        WildcardMask {
            addr: u32::from(addr) & !w,
            wildcard: w,
        }
    }

    /// Exact-host matcher.
    pub fn host(addr: Ipv4Addr) -> Self {
        WildcardMask {
            addr: u32::from(addr),
            wildcard: 0,
        }
    }

    /// Matcher for every address in a prefix.
    pub fn from_prefix(p: &Prefix) -> Self {
        let care = if p.is_empty() {
            0
        } else {
            u32::MAX << (32 - u32::from(p.len()))
        };
        WildcardMask {
            addr: p.bits(),
            wildcard: !care,
        }
    }

    /// Does this matcher accept `ip`?
    pub fn matches(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) ^ self.addr) & !self.wildcard == 0
    }

    /// If the wildcard is contiguous (a proper inverted netmask), the
    /// equivalent prefix; `None` for non-contiguous wildcards.
    pub fn as_prefix(&self) -> Option<Prefix> {
        let care = !self.wildcard;
        let len = care.leading_ones() as u8;
        let contiguous = self.wildcard
            == if len == 0 {
                u32::MAX
            } else {
                !(u32::MAX << (32 - u32::from(len)))
            }
            || (len == 32 && self.wildcard == 0);
        if contiguous {
            Some(Prefix::new(Ipv4Addr::from(self.addr), len))
        } else {
            None
        }
    }

    /// Number of "don't care" bits (log2 of the matched-set size).
    pub fn free_bits(&self) -> u32 {
        self.wildcard.count_ones()
    }

    /// Decompose the matched set into prefixes.
    ///
    /// A contiguous mask yields its single prefix. A non-contiguous mask
    /// matches a union of `2^k` prefixes, where `k` counts the wildcard
    /// bits above the trailing wildcard run: each assignment of those bits
    /// pins one prefix. When that enumeration would exceed `max`, the
    /// result degrades to the smallest single prefix covering the whole
    /// set (the leading fixed bits) — a sound over-approximation for
    /// consumers that only need a covering universe.
    pub fn cover_prefixes(&self, max: usize) -> Vec<Prefix> {
        if let Some(p) = self.as_prefix() {
            return vec![p];
        }
        // Trailing wildcard bits fold into the prefix length; every
        // wildcard bit above them must be enumerated.
        // Non-contiguous, so 0 < wildcard and trailing_ones < 32.
        let trailing = self.wildcard.trailing_ones();
        let len = (32 - trailing) as u8;
        let high_wild = self.wildcard & !((1u32 << trailing) - 1);
        let k = high_wild.count_ones();
        if k >= usize::BITS || (1usize << k) > max {
            let cover_len = self.wildcard.leading_zeros();
            let cover_mask = if cover_len == 0 {
                0
            } else {
                u32::MAX << (32 - cover_len)
            };
            return vec![Prefix::new(
                Ipv4Addr::from(self.addr & cover_mask),
                cover_len as u8,
            )];
        }
        // Spread each counter value over the enumerated wildcard bit
        // positions (LSB of the counter → lowest enumerated bit).
        let positions: Vec<u32> = (0..32).filter(|b| high_wild & (1 << b) != 0).collect();
        (0..1u32 << k)
            .map(|combo| {
                let mut addr = self.addr;
                for (j, &pos) in positions.iter().enumerate() {
                    if combo & (1 << j) != 0 {
                        addr |= 1 << pos;
                    }
                }
                Prefix::new(Ipv4Addr::from(addr), len)
            })
            .collect()
    }
}

impl fmt::Display for WildcardMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}",
            Ipv4Addr::from(self.addr),
            Ipv4Addr::from(self.wildcard)
        )
    }
}
