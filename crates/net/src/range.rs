//! Prefix ranges — the primitive of the paper's §3.2.
//!
//! A prefix range pairs a prefix with an interval of lengths. The paper's
//! examples: `(1.2.0.0/16, 16-32)` is every prefix inside `1.2.0.0/16`;
//! `(0.0.0.0/0, 0-32)` is the set of *all* prefixes; `(1.0.0.0/8, 24-24)` is
//! every `/24` whose first octet is 1.

use std::fmt;
use std::str::FromStr;

use crate::prefix::{mask, ParseNetError, Prefix};

/// A set of IPv4 prefixes described by a covering prefix plus a length
/// interval.
///
/// A prefix `p` is a **member** of range `R` when
/// 1. `p`'s address matches `R`'s prefix (on `R.prefix.len()` bits), and
/// 2. `p`'s length lies within `R`'s interval.
///
/// ```
/// use campion_net::{Prefix, PrefixRange};
/// let r: PrefixRange = "10.9.0.0/16:16-32".parse().unwrap();
/// assert!(r.member(&"10.9.1.0/24".parse::<Prefix>().unwrap()));
/// assert!(!r.member(&"10.9.0.0/8".parse::<Prefix>().unwrap()));
/// assert!(PrefixRange::universe().contains(&r));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefixRange {
    /// The covering prefix.
    pub prefix: Prefix,
    /// Smallest member length, inclusive.
    pub min_len: u8,
    /// Largest member length, inclusive.
    pub max_len: u8,
}

impl PrefixRange {
    /// Construct a range. Lengths are clamped to `0..=32`.
    ///
    /// # Panics
    /// Panics if `min_len > max_len` — empty ranges are represented by
    /// `Option<PrefixRange>` at the API boundary instead.
    pub fn new(prefix: Prefix, min_len: u8, max_len: u8) -> Self {
        assert!(min_len <= max_len, "empty prefix range {min_len}-{max_len}");
        assert!(max_len <= 32, "prefix range length beyond /32");
        PrefixRange {
            prefix,
            min_len,
            max_len,
        }
    }

    /// The range containing exactly one prefix.
    pub fn exact(prefix: Prefix) -> Self {
        PrefixRange::new(prefix, prefix.len(), prefix.len())
    }

    /// The prefix itself and everything more specific
    /// (Juniper `orlonger`, Cisco `le 32` from the prefix's own length).
    pub fn or_longer(prefix: Prefix) -> Self {
        PrefixRange::new(prefix, prefix.len(), 32)
    }

    /// `U` in the paper: the set of all prefixes, `(0.0.0.0/0, 0-32)`.
    pub fn universe() -> Self {
        PrefixRange::new(Prefix::DEFAULT, 0, 32)
    }

    /// Is `p` a member of this range? (Definition from §3.2.)
    pub fn member(&self, p: &Prefix) -> bool {
        let addr_matches = p.bits() & mask(self.prefix.len()) == self.prefix.bits();
        addr_matches && self.min_len <= p.len() && p.len() <= self.max_len
    }

    /// Is every member of `other` a member of `self`? (`other ⊆ self`,
    /// the paper's `R₁ ⊂ R₂` relation plus equality.)
    ///
    /// Membership constrains a member's *first `prefix.len()` address bits*
    /// and its length — exactly how the symbolic layer encodes a range over
    /// `(32 address bits, length)`. Under that semantics containment is
    /// purely structural: `self`'s length interval must cover `other`'s, and
    /// `self`'s (necessarily no longer) address constraint must be implied
    /// by `other`'s.
    pub fn contains(&self, other: &PrefixRange) -> bool {
        self.min_len <= other.min_len
            && self.max_len >= other.max_len
            && self.prefix.len() <= other.prefix.len()
            && other.prefix.bits() & mask(self.prefix.len()) == self.prefix.bits()
    }

    /// Strict containment: `other ⊂ self` and the two ranges denote
    /// different sets.
    pub fn contains_strictly(&self, other: &PrefixRange) -> bool {
        self.contains(other) && !other.contains(self)
    }

    /// Intersection of two ranges, or `None` when empty.
    ///
    /// The address constraints compose only when one covering prefix
    /// contains the other; the length interval intersects numerically.
    pub fn intersect(&self, other: &PrefixRange) -> Option<PrefixRange> {
        let (shorter, longer) = if self.prefix.len() <= other.prefix.len() {
            (self, other)
        } else {
            (other, self)
        };
        if longer.prefix.bits() & mask(shorter.prefix.len()) != shorter.prefix.bits() {
            return None;
        }
        let min_len = self.min_len.max(other.min_len);
        let max_len = self.max_len.min(other.max_len);
        if min_len > max_len {
            return None;
        }
        Some(PrefixRange::new(longer.prefix, min_len, max_len))
    }

    /// The canonical representative of this range's **member set**, or
    /// `None` when the set is empty.
    ///
    /// Structurally different ranges can denote the same set of prefixes:
    /// `(10.0.0.0/8, 0-8)` and `(10.0.0.0/16, 8-8)` both contain exactly
    /// `{10.0.0.0/8}`. Two normalizations make the representation unique:
    ///
    /// * A member of length `l < prefix.len()` is the *truncation* of the
    ///   covering prefix, and exists only when truncating to `l` bits
    ///   preserves them all — i.e. when `l ≥ significant_len(bits)`. The
    ///   nonempty member lengths therefore form the contiguous interval
    ///   `[max(min_len, significant_len), max_len]`, which becomes the
    ///   canonical interval (`None` when it is empty).
    /// * Bits of the covering prefix beyond `max_len` never constrain any
    ///   member (all members are at most `max_len` long), so the covering
    ///   prefix is truncated to `min(prefix.len(), max_len)`.
    ///
    /// After both steps, equal member sets have equal representatives: the
    /// canonical interval is exactly the set's length profile (one member
    /// per length up to the covering length, a full fan-out beyond it), so
    /// the set determines the interval, and its shortest member determines
    /// the covering prefix.
    pub fn canonical_members(&self) -> Option<PrefixRange> {
        let z = significant_len(self.prefix.bits());
        let min_len = self.min_len.max(z);
        if min_len > self.max_len {
            return None;
        }
        let plen = self.prefix.len().min(self.max_len);
        let prefix = Prefix::new(self.prefix.addr(), plen);
        Some(PrefixRange::new(prefix, min_len, self.max_len))
    }

    /// Exact member-set containment: is every member of `other` a member
    /// of `self`? Unlike [`PrefixRange::contains`] — which is sound but
    /// incomplete on non-canonical ranges — this decides the relation
    /// exactly, by comparing canonical representatives.
    pub fn member_superset(&self, other: &PrefixRange) -> bool {
        let Some(a) = other.canonical_members() else {
            return true; // ∅ ⊆ anything
        };
        let Some(b) = self.canonical_members() else {
            return false; // a is nonempty
        };
        // b's interval must cover a's, and every member of a must match
        // b's covering bits. Members of a at length ≥ a.prefix.len() all
        // share a's covering bits on the first a.prefix.len() bits but are
        // otherwise free, so when b's covering prefix is *longer* than
        // a's, containment additionally requires a to have no members
        // beyond its covering length — canonically, `a.max_len ==
        // a.prefix.len()` (a is a chain of truncations, pinned bitwise).
        b.min_len <= a.min_len
            && a.max_len <= b.max_len
            && a.prefix.bits() & mask(b.prefix.len()) == b.prefix.bits()
            && (b.prefix.len() <= a.prefix.len() || a.max_len == a.prefix.len())
    }

    /// Exact member-set emptiness (e.g. `(10.0.0.0/8, 0-6)` has no
    /// members: no 0–6-bit truncation preserves the `10.` octet).
    pub fn members_empty(&self) -> bool {
        self.canonical_members().is_none()
    }

    /// Number of member prefixes (for minimality metrics in tests).
    pub fn member_count(&self) -> u128 {
        let mut total = 0u128;
        for len in self.min_len..=self.max_len {
            let free = u32::from(len.saturating_sub(self.prefix.len()));
            // For len < prefix.len() the only candidate is the truncated
            // prefix, and it is a member iff truncation preserves the bits.
            if len < self.prefix.len() {
                if self.prefix.bits() & mask(len) == self.prefix.bits() {
                    total += 1;
                }
            } else {
                total += 1u128 << free;
            }
        }
        total
    }
}

/// The shortest truncation of `bits` that preserves them all: `32 −
/// trailing_zeros`, or 0 for the all-zero address.
fn significant_len(bits: u32) -> u8 {
    if bits == 0 {
        0
    } else {
        (32 - bits.trailing_zeros()) as u8
    }
}

impl fmt::Display for PrefixRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {}-{}", self.prefix, self.min_len, self.max_len)
    }
}

impl FromStr for PrefixRange {
    type Err = ParseNetError;

    /// Parses `"10.9.0.0/16:16-32"` (whitespace around `:` and `-` allowed).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (p, lens) = s
            .split_once(':')
            .ok_or_else(|| ParseNetError::new(format!("missing ':' in prefix range {s:?}")))?;
        let prefix: Prefix = p.trim().parse()?;
        let (lo, hi) = lens
            .split_once('-')
            .ok_or_else(|| ParseNetError::new(format!("missing '-' in prefix range {s:?}")))?;
        let min_len: u8 = lo
            .trim()
            .parse()
            .map_err(|_| ParseNetError::new(format!("bad min length in {s:?}")))?;
        let max_len: u8 = hi
            .trim()
            .parse()
            .map_err(|_| ParseNetError::new(format!("bad max length in {s:?}")))?;
        if min_len > max_len || max_len > 32 {
            return Err(ParseNetError::new(format!("bad length interval in {s:?}")));
        }
        Ok(PrefixRange::new(prefix, min_len, max_len))
    }
}
