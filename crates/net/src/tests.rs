//! Unit and property tests for network primitives.

use std::net::Ipv4Addr;

use crate::{Community, IpProtocol, PortRange, Prefix, PrefixRange, WildcardMask};

#[test]
fn prefix_parses_and_canonicalizes() {
    let p: Prefix = "10.9.1.77/24".parse().unwrap();
    assert_eq!(p.to_string(), "10.9.1.0/24");
    assert_eq!(p.len(), 24);
    assert_eq!(p.netmask(), Ipv4Addr::new(255, 255, 255, 0));
    let host: Prefix = "1.2.3.4".parse().unwrap();
    assert_eq!(host.len(), 32);
}

#[test]
fn prefix_rejects_garbage() {
    assert!("10.0.0.0/33".parse::<Prefix>().is_err());
    assert!("10.0.0/8".parse::<Prefix>().is_err());
    assert!("hello".parse::<Prefix>().is_err());
}

#[test]
fn prefix_containment() {
    let p16: Prefix = "10.9.0.0/16".parse().unwrap();
    let p24: Prefix = "10.9.1.0/24".parse().unwrap();
    let other: Prefix = "10.10.0.0/16".parse().unwrap();
    assert!(p16.contains(&p24));
    assert!(!p24.contains(&p16));
    assert!(!p16.contains(&other));
    assert!(Prefix::DEFAULT.contains(&p16));
    assert!(p16.contains(&p16));
}

#[test]
fn prefix_from_netmask() {
    let p = Prefix::from_netmask(
        Ipv4Addr::new(10, 1, 1, 2),
        Ipv4Addr::new(255, 255, 255, 254),
    )
    .unwrap();
    assert_eq!(p.to_string(), "10.1.1.2/31");
    assert!(
        Prefix::from_netmask(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(255, 0, 255, 0)).is_err()
    );
}

#[test]
fn prefix_range_membership_matches_paper_examples() {
    // Examples from §3.2 of the paper.
    let r: PrefixRange = "1.2.0.0/16:16-32".parse().unwrap();
    assert!(r.member(&"1.2.3.0/24".parse().unwrap()));
    let u = PrefixRange::universe();
    assert!(u.member(&"0.0.0.0/0".parse().unwrap()));
    assert!(u.member(&"255.255.255.255/32".parse().unwrap()));
    let slash24s: PrefixRange = "1.0.0.0/8:24-24".parse().unwrap();
    assert!(slash24s.member(&"1.200.3.0/24".parse().unwrap()));
    assert!(!slash24s.member(&"2.0.0.0/24".parse().unwrap()));
    assert!(!slash24s.member(&"1.2.0.0/16".parse().unwrap()));
}

#[test]
fn prefix_range_containment() {
    let all: PrefixRange = "10.9.0.0/16:16-32".parse().unwrap();
    let exact: PrefixRange = "10.9.0.0/16:16-16".parse().unwrap();
    let sub: PrefixRange = "10.9.4.0/24:24-32".parse().unwrap();
    assert!(all.contains(&exact));
    assert!(all.contains(&sub));
    assert!(!exact.contains(&all));
    assert!(!sub.contains(&all));
    assert!(PrefixRange::universe().contains(&all));
    assert!(all.contains_strictly(&exact));
    assert!(!all.contains_strictly(&all));
}

#[test]
fn prefix_range_intersection() {
    let a: PrefixRange = "10.9.0.0/16:16-32".parse().unwrap();
    let b: PrefixRange = "10.9.4.0/24:20-28".parse().unwrap();
    let i = a.intersect(&b).unwrap();
    assert_eq!(i.to_string(), "10.9.4.0/24 : 20-28");
    // Disjoint addresses.
    let c: PrefixRange = "10.10.0.0/16:16-32".parse().unwrap();
    assert!(a.intersect(&c).is_none());
    // Disjoint length intervals.
    let d: PrefixRange = "10.9.0.0/16:16-16".parse().unwrap();
    let e: PrefixRange = "10.9.0.0/16:24-32".parse().unwrap();
    assert!(d.intersect(&e).is_none());
    // Intersection with the universe is identity.
    assert_eq!(a.intersect(&PrefixRange::universe()), Some(a));
}

#[test]
fn prefix_range_display_round_trip() {
    let r = PrefixRange::new("10.100.0.0/16".parse().unwrap(), 16, 32);
    assert_eq!(r.to_string(), "10.100.0.0/16 : 16-32");
    let back: PrefixRange = r.to_string().parse().unwrap();
    assert_eq!(back, r);
}

#[test]
fn prefix_range_member_count() {
    let exact = PrefixRange::exact("10.0.0.0/8".parse().unwrap());
    assert_eq!(exact.member_count(), 1);
    let two_lens: PrefixRange = "10.0.0.0/8:8-9".parse().unwrap();
    assert_eq!(two_lens.member_count(), 3); // the /8 itself + two /9s
}

#[test]
fn community_round_trip() {
    let c: Community = "10:11".parse().unwrap();
    assert_eq!(c, Community::new(10, 11));
    assert_eq!(Community::from_u32(c.as_u32()), c);
    assert!("1011".parse::<Community>().is_err());
    assert!("a:b".parse::<Community>().is_err());
}

#[test]
fn protocol_numbers() {
    assert_eq!(IpProtocol::Tcp.number(), Some(6));
    assert_eq!(IpProtocol::Any.number(), None);
    assert_eq!(IpProtocol::from_number(17), IpProtocol::Udp);
    assert!(IpProtocol::Any.matches(200));
    assert!(IpProtocol::Icmp.matches(1));
    assert!(!IpProtocol::Icmp.matches(6));
    assert_eq!("tcp".parse::<IpProtocol>().unwrap(), IpProtocol::Tcp);
    assert_eq!("47".parse::<IpProtocol>().unwrap(), IpProtocol::Other(47));
}

#[test]
fn port_ranges() {
    let r = PortRange::new(1000, 2000);
    assert!(r.contains(1000) && r.contains(2000) && !r.contains(999));
    assert!(PortRange::ANY.contains(0) && PortRange::ANY.contains(65535));
    assert_eq!(PortRange::exact(443).to_string(), "443");
    assert_eq!(r.to_string(), "1000-2000");
    assert_eq!(PortRange::ANY.to_string(), "any");
}

#[test]
fn wildcard_masks() {
    // Table 7's matcher: 9.140.0.0 0.0.1.255 covers two adjacent /24s.
    let w = WildcardMask::new(Ipv4Addr::new(9, 140, 0, 0), Ipv4Addr::new(0, 0, 1, 255));
    assert!(w.matches(Ipv4Addr::new(9, 140, 0, 3)));
    assert!(w.matches(Ipv4Addr::new(9, 140, 1, 200)));
    assert!(!w.matches(Ipv4Addr::new(9, 140, 2, 1)));
    assert_eq!(w.as_prefix().unwrap().to_string(), "9.140.0.0/23");
    assert_eq!(w.free_bits(), 9);

    // A genuinely non-contiguous wildcard: every even /24 inside a /16.
    let nc = WildcardMask::new(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(0, 0, 2, 255));
    assert!(nc.matches(Ipv4Addr::new(10, 0, 2, 9)));
    assert!(!nc.matches(Ipv4Addr::new(10, 0, 1, 9)));
    assert!(nc.as_prefix().is_none(), "0.0.2.255 is not contiguous");

    let contiguous = WildcardMask::new(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(0, 0, 255, 255));
    assert_eq!(contiguous.as_prefix().unwrap().to_string(), "10.0.0.0/16");
    assert_eq!(
        WildcardMask::host(Ipv4Addr::new(1, 2, 3, 4))
            .as_prefix()
            .unwrap()
            .to_string(),
        "1.2.3.4/32"
    );
    assert!(WildcardMask::ANY.matches(Ipv4Addr::new(200, 1, 2, 3)));
    assert_eq!(
        WildcardMask::ANY.as_prefix().unwrap(),
        crate::Prefix::DEFAULT
    );
}

#[test]
fn wildcard_from_prefix_round_trips() {
    for s in ["0.0.0.0/0", "10.0.0.0/8", "10.9.1.0/24", "1.2.3.4/32"] {
        let p: Prefix = s.parse().unwrap();
        let w = WildcardMask::from_prefix(&p);
        assert_eq!(w.as_prefix(), Some(p), "round trip failed for {s}");
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(Ipv4Addr::from(bits), len))
    }

    fn arb_range() -> impl Strategy<Value = PrefixRange> {
        (arb_prefix(), 0u8..=32, 0u8..=32).prop_map(|(p, a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            PrefixRange::new(p, lo, hi)
        })
    }

    proptest! {
        #[test]
        fn intersection_agrees_with_membership(
            a in arb_range(), b in arb_range(), p in arb_prefix()
        ) {
            let both = a.member(&p) && b.member(&p);
            match a.intersect(&b) {
                Some(i) => prop_assert_eq!(i.member(&p), both),
                None => prop_assert!(!both),
            }
        }

        #[test]
        fn containment_implies_membership(a in arb_range(), b in arb_range(), p in arb_prefix()) {
            if a.contains(&b) && b.member(&p) {
                prop_assert!(a.member(&p));
            }
        }

        #[test]
        fn intersection_is_commutative(a in arb_range(), b in arb_range()) {
            let ab = a.intersect(&b);
            let ba = b.intersect(&a);
            match (ab, ba) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    // Same set: mutual containment.
                    prop_assert!(x.contains(&y) && y.contains(&x));
                }
                _ => prop_assert!(false, "intersection not commutative"),
            }
        }

        #[test]
        fn universe_contains_everything(a in arb_range()) {
            prop_assert!(PrefixRange::universe().contains(&a));
            prop_assert_eq!(a.intersect(&PrefixRange::universe()), Some(a));
        }

        #[test]
        fn prefix_contains_is_partial_order(a in arb_prefix(), b in arb_prefix(), c in arb_prefix()) {
            prop_assert!(a.contains(&a));
            if a.contains(&b) && b.contains(&a) {
                prop_assert_eq!(a, b);
            }
            if a.contains(&b) && b.contains(&c) {
                prop_assert!(a.contains(&c));
            }
        }

        #[test]
        fn wildcard_prefix_equivalence(p in arb_prefix(), ip in any::<u32>()) {
            let w = WildcardMask::from_prefix(&p);
            let ip = Ipv4Addr::from(ip);
            prop_assert_eq!(w.matches(ip), p.contains_addr(ip));
        }
    }

    /// A range whose members all live in the ≤ /8 universe, so member sets
    /// can be enumerated exhaustively (Σ 2^l for l ≤ 8 = 511 prefixes).
    fn arb_small_range() -> impl Strategy<Value = PrefixRange> {
        (any::<u32>(), 0u8..=8, 0u8..=8, 0u8..=8).prop_map(|(bits, len, a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            PrefixRange::new(Prefix::new(Ipv4Addr::from(bits), len), lo, hi)
        })
    }

    /// Every prefix of length ≤ 8.
    fn small_universe() -> Vec<Prefix> {
        let mut out = Vec::new();
        for len in 0u8..=8 {
            for block in 0u32..(1 << len) {
                let bits = if len == 0 { 0 } else { block << (32 - len) };
                out.push(Prefix::new(Ipv4Addr::from(bits), len));
            }
        }
        out
    }

    fn member_set(r: &PrefixRange, universe: &[Prefix]) -> Vec<Prefix> {
        universe.iter().filter(|p| r.member(p)).copied().collect()
    }

    proptest! {
        #[test]
        fn canonical_members_preserves_the_member_set(r in arb_small_range()) {
            let universe = small_universe();
            let members = member_set(&r, &universe);
            match r.canonical_members() {
                None => prop_assert!(members.is_empty(), "{r} claimed empty"),
                Some(c) => {
                    prop_assert!(!members.is_empty(), "{r} → {c} claimed nonempty");
                    prop_assert_eq!(member_set(&c, &universe), members);
                }
            }
        }

        #[test]
        fn canonical_members_is_a_set_key(a in arb_small_range(), b in arb_small_range()) {
            let universe = small_universe();
            let equal_sets = member_set(&a, &universe) == member_set(&b, &universe);
            prop_assert_eq!(
                a.canonical_members() == b.canonical_members(),
                equal_sets,
                "{} vs {}", a, b
            );
        }

        #[test]
        fn member_superset_is_exact(a in arb_small_range(), b in arb_small_range()) {
            let universe = small_universe();
            let sa = member_set(&a, &universe);
            let sb = member_set(&b, &universe);
            let brute = sb.iter().all(|p| sa.contains(p));
            prop_assert_eq!(a.member_superset(&b), brute, "{} ⊇ {}", a, b);
            // And the structural `contains` stays sound w.r.t. member sets.
            if a.contains(&b) {
                prop_assert!(brute);
            }
        }
    }

    #[test]
    fn member_set_algebra_edge_cases() {
        let r = |s: &str| s.parse::<PrefixRange>().unwrap();
        // Equal sets under different spellings.
        assert_eq!(
            r("10.0.0.0/8:8-8").canonical_members(),
            r("10.0.0.0/16:8-8").canonical_members()
        );
        assert_eq!(
            r("10.0.0.0/8:0-8").canonical_members(),
            Some(r("10.0.0.0/8:7-8"))
        );
        // Truncation below the significant bits empties the set.
        assert!(r("10.0.0.0/8:0-6").members_empty());
        assert!(!r("10.0.0.0/8:0-7").members_empty());
        // /0 and /32 extremes.
        assert!(PrefixRange::universe().member_superset(&r("255.255.255.255/32:32-32")));
        assert!(r("0.0.0.0/0:0-0").member_superset(&r("10.0.0.0/8:0-6")));
        assert!(!r("0.0.0.0/0:0-0").member_superset(&r("0.0.0.0/0:0-1")));
        // Adjacent blocks are unrelated.
        assert!(!r("10.0.0.0/9:9-32").member_superset(&r("10.128.0.0/9:9-32")));
        assert!(!r("10.128.0.0/9:9-32").member_superset(&r("10.0.0.0/9:9-32")));
    }
}
