/root/repo/target/debug/libcampion_bdd.rlib: /root/repo/crates/bdd/src/cube.rs /root/repo/crates/bdd/src/lib.rs /root/repo/crates/bdd/src/manager.rs
