/root/repo/target/debug/examples/backup_audit-f63c925fb374f490.d: examples/backup_audit.rs

/root/repo/target/debug/examples/backup_audit-f63c925fb374f490: examples/backup_audit.rs

examples/backup_audit.rs:
