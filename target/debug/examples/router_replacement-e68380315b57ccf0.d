/root/repo/target/debug/examples/router_replacement-e68380315b57ccf0.d: examples/router_replacement.rs

/root/repo/target/debug/examples/router_replacement-e68380315b57ccf0: examples/router_replacement.rs

examples/router_replacement.rs:
