/root/repo/target/debug/examples/minesweeper_vs_campion-dd22f5c87037e06a.d: examples/minesweeper_vs_campion.rs Cargo.toml

/root/repo/target/debug/examples/libminesweeper_vs_campion-dd22f5c87037e06a.rmeta: examples/minesweeper_vs_campion.rs Cargo.toml

examples/minesweeper_vs_campion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
