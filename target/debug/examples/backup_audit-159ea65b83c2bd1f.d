/root/repo/target/debug/examples/backup_audit-159ea65b83c2bd1f.d: examples/backup_audit.rs Cargo.toml

/root/repo/target/debug/examples/libbackup_audit-159ea65b83c2bd1f.rmeta: examples/backup_audit.rs Cargo.toml

examples/backup_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
