/root/repo/target/debug/examples/router_replacement-f1a7a6c6e9d16269.d: examples/router_replacement.rs Cargo.toml

/root/repo/target/debug/examples/librouter_replacement-f1a7a6c6e9d16269.rmeta: examples/router_replacement.rs Cargo.toml

examples/router_replacement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
