/root/repo/target/debug/examples/quickstart-288e08e038e3ef77.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-288e08e038e3ef77: examples/quickstart.rs

examples/quickstart.rs:
