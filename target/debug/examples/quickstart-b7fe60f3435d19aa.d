/root/repo/target/debug/examples/quickstart-b7fe60f3435d19aa.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b7fe60f3435d19aa.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
