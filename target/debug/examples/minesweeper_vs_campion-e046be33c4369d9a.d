/root/repo/target/debug/examples/minesweeper_vs_campion-e046be33c4369d9a.d: examples/minesweeper_vs_campion.rs

/root/repo/target/debug/examples/minesweeper_vs_campion-e046be33c4369d9a: examples/minesweeper_vs_campion.rs

examples/minesweeper_vs_campion.rs:
