/root/repo/target/debug/deps/campion_core-0d3254ef3c49b862.d: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs

/root/repo/target/debug/deps/libcampion_core-0d3254ef3c49b862.rlib: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs

/root/repo/target/debug/deps/libcampion_core-0d3254ef3c49b862.rmeta: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs

crates/core/src/lib.rs:
crates/core/src/commloc.rs:
crates/core/src/driver.rs:
crates/core/src/headerloc.rs:
crates/core/src/matching.rs:
crates/core/src/portloc.rs:
crates/core/src/report.rs:
crates/core/src/semantic.rs:
crates/core/src/structural.rs:
