/root/repo/target/debug/deps/campion_cfg-8dd8e241c2d7587a.d: crates/cfg/src/lib.rs crates/cfg/src/cisco/mod.rs crates/cfg/src/cisco/ast.rs crates/cfg/src/cisco/parser.rs crates/cfg/src/cisco/tests.rs crates/cfg/src/juniper/mod.rs crates/cfg/src/juniper/ast.rs crates/cfg/src/juniper/parser.rs crates/cfg/src/juniper/setstyle.rs crates/cfg/src/juniper/tree.rs crates/cfg/src/juniper/tests.rs crates/cfg/src/detect.rs crates/cfg/src/error.rs crates/cfg/src/samples.rs crates/cfg/src/span.rs crates/cfg/src/robustness.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_cfg-8dd8e241c2d7587a.rmeta: crates/cfg/src/lib.rs crates/cfg/src/cisco/mod.rs crates/cfg/src/cisco/ast.rs crates/cfg/src/cisco/parser.rs crates/cfg/src/cisco/tests.rs crates/cfg/src/juniper/mod.rs crates/cfg/src/juniper/ast.rs crates/cfg/src/juniper/parser.rs crates/cfg/src/juniper/setstyle.rs crates/cfg/src/juniper/tree.rs crates/cfg/src/juniper/tests.rs crates/cfg/src/detect.rs crates/cfg/src/error.rs crates/cfg/src/samples.rs crates/cfg/src/span.rs crates/cfg/src/robustness.rs Cargo.toml

crates/cfg/src/lib.rs:
crates/cfg/src/cisco/mod.rs:
crates/cfg/src/cisco/ast.rs:
crates/cfg/src/cisco/parser.rs:
crates/cfg/src/cisco/tests.rs:
crates/cfg/src/juniper/mod.rs:
crates/cfg/src/juniper/ast.rs:
crates/cfg/src/juniper/parser.rs:
crates/cfg/src/juniper/setstyle.rs:
crates/cfg/src/juniper/tree.rs:
crates/cfg/src/juniper/tests.rs:
crates/cfg/src/detect.rs:
crates/cfg/src/error.rs:
crates/cfg/src/samples.rs:
crates/cfg/src/span.rs:
crates/cfg/src/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
