/root/repo/target/debug/deps/cex_count-8474aab73a0282a8.d: crates/bench/src/bin/cex_count.rs Cargo.toml

/root/repo/target/debug/deps/libcex_count-8474aab73a0282a8.rmeta: crates/bench/src/bin/cex_count.rs Cargo.toml

crates/bench/src/bin/cex_count.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
