/root/repo/target/debug/deps/table6-40a1b0ee7273f5e6.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-40a1b0ee7273f5e6.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
