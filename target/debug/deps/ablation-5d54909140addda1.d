/root/repo/target/debug/deps/ablation-5d54909140addda1.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-5d54909140addda1.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
