/root/repo/target/debug/deps/scalability-32bbe326e8a8ace7.d: crates/bench/src/bin/scalability.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-32bbe326e8a8ace7.rmeta: crates/bench/src/bin/scalability.rs Cargo.toml

crates/bench/src/bin/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
