/root/repo/target/debug/deps/campion_bench-70233d46f9214734.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcampion_bench-70233d46f9214734.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcampion_bench-70233d46f9214734.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
