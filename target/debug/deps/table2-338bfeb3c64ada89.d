/root/repo/target/debug/deps/table2-338bfeb3c64ada89.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-338bfeb3c64ada89: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
