/root/repo/target/debug/deps/network_wide-494734733159ef09.d: tests/network_wide.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_wide-494734733159ef09.rmeta: tests/network_wide.rs Cargo.toml

tests/network_wide.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
