/root/repo/target/debug/deps/ablation-8d5fa6167e4bd85b.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-8d5fa6167e4bd85b: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
