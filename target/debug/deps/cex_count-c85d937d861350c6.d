/root/repo/target/debug/deps/cex_count-c85d937d861350c6.d: crates/bench/src/bin/cex_count.rs

/root/repo/target/debug/deps/cex_count-c85d937d861350c6: crates/bench/src/bin/cex_count.rs

crates/bench/src/bin/cex_count.rs:
