/root/repo/target/debug/deps/campion_bdd-5b1f6177f4be67b5.d: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs crates/bdd/src/tests.rs

/root/repo/target/debug/deps/campion_bdd-5b1f6177f4be67b5: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs crates/bdd/src/tests.rs

crates/bdd/src/lib.rs:
crates/bdd/src/cube.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/tests.rs:
