/root/repo/target/debug/deps/campion_symbolic-228cbe4369579eef.d: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs

/root/repo/target/debug/deps/libcampion_symbolic-228cbe4369579eef.rlib: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs

/root/repo/target/debug/deps/libcampion_symbolic-228cbe4369579eef.rmeta: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs

crates/symbolic/src/lib.rs:
crates/symbolic/src/action.rs:
crates/symbolic/src/bits.rs:
crates/symbolic/src/packet_space.rs:
crates/symbolic/src/route_space.rs:
