/root/repo/target/debug/deps/table4-444177727fbc9a80.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-444177727fbc9a80: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
