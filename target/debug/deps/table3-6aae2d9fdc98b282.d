/root/repo/target/debug/deps/table3-6aae2d9fdc98b282.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-6aae2d9fdc98b282: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
