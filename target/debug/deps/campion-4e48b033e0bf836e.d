/root/repo/target/debug/deps/campion-4e48b033e0bf836e.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcampion-4e48b033e0bf836e.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
