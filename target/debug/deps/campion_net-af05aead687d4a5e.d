/root/repo/target/debug/deps/campion_net-af05aead687d4a5e.d: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_net-af05aead687d4a5e.rmeta: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/community.rs:
crates/net/src/flow.rs:
crates/net/src/prefix.rs:
crates/net/src/range.rs:
crates/net/src/regex.rs:
crates/net/src/regex_dfa.rs:
crates/net/src/wildcard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
