/root/repo/target/debug/deps/cli-b43641d204861f63.d: tests/cli.rs

/root/repo/target/debug/deps/cli-b43641d204861f63: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_campion=/root/repo/target/debug/campion
