/root/repo/target/debug/deps/campion_minesweeper-34ace4317c3b66f3.d: crates/minesweeper/src/lib.rs crates/minesweeper/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_minesweeper-34ace4317c3b66f3.rmeta: crates/minesweeper/src/lib.rs crates/minesweeper/src/tests.rs Cargo.toml

crates/minesweeper/src/lib.rs:
crates/minesweeper/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
