/root/repo/target/debug/deps/campion-edc84f2ea10e05e1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcampion-edc84f2ea10e05e1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
