/root/repo/target/debug/deps/translate-3c35335f84864d44.d: tests/translate.rs

/root/repo/target/debug/deps/translate-3c35335f84864d44: tests/translate.rs

tests/translate.rs:
