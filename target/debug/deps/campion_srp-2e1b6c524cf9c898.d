/root/repo/target/debug/deps/campion_srp-2e1b6c524cf9c898.d: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs crates/srp/src/proptests.rs crates/srp/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_srp-2e1b6c524cf9c898.rmeta: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs crates/srp/src/proptests.rs crates/srp/src/tests.rs Cargo.toml

crates/srp/src/lib.rs:
crates/srp/src/bgp.rs:
crates/srp/src/network.rs:
crates/srp/src/ospf.rs:
crates/srp/src/srp.rs:
crates/srp/src/proptests.rs:
crates/srp/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
