/root/repo/target/debug/deps/parse-69ff3e5b68d35223.d: crates/bench/benches/parse.rs Cargo.toml

/root/repo/target/debug/deps/libparse-69ff3e5b68d35223.rmeta: crates/bench/benches/parse.rs Cargo.toml

crates/bench/benches/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
