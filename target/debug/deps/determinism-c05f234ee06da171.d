/root/repo/target/debug/deps/determinism-c05f234ee06da171.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-c05f234ee06da171: tests/determinism.rs

tests/determinism.rs:
