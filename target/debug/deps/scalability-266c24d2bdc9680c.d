/root/repo/target/debug/deps/scalability-266c24d2bdc9680c.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-266c24d2bdc9680c: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
