/root/repo/target/debug/deps/campion_minesweeper-1765934798a0690b.d: crates/minesweeper/src/lib.rs crates/minesweeper/src/tests.rs

/root/repo/target/debug/deps/campion_minesweeper-1765934798a0690b: crates/minesweeper/src/lib.rs crates/minesweeper/src/tests.rs

crates/minesweeper/src/lib.rs:
crates/minesweeper/src/tests.rs:
