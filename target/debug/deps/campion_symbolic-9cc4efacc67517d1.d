/root/repo/target/debug/deps/campion_symbolic-9cc4efacc67517d1.d: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs crates/symbolic/src/tests.rs

/root/repo/target/debug/deps/campion_symbolic-9cc4efacc67517d1: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs crates/symbolic/src/tests.rs

crates/symbolic/src/lib.rs:
crates/symbolic/src/action.rs:
crates/symbolic/src/bits.rs:
crates/symbolic/src/packet_space.rs:
crates/symbolic/src/route_space.rs:
crates/symbolic/src/tests.rs:
