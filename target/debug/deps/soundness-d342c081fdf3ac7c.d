/root/repo/target/debug/deps/soundness-d342c081fdf3ac7c.d: tests/soundness.rs Cargo.toml

/root/repo/target/debug/deps/libsoundness-d342c081fdf3ac7c.rmeta: tests/soundness.rs Cargo.toml

tests/soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
