/root/repo/target/debug/deps/table8-4b5593b93718f41a.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-4b5593b93718f41a: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
