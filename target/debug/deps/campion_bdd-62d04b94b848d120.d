/root/repo/target/debug/deps/campion_bdd-62d04b94b848d120.d: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_bdd-62d04b94b848d120.rmeta: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs Cargo.toml

crates/bdd/src/lib.rs:
crates/bdd/src/cube.rs:
crates/bdd/src/manager.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
