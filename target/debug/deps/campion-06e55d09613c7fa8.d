/root/repo/target/debug/deps/campion-06e55d09613c7fa8.d: src/lib.rs

/root/repo/target/debug/deps/libcampion-06e55d09613c7fa8.rlib: src/lib.rs

/root/repo/target/debug/deps/libcampion-06e55d09613c7fa8.rmeta: src/lib.rs

src/lib.rs:
