/root/repo/target/debug/deps/pipeline-e3157adf6853bb3e.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-e3157adf6853bb3e: tests/pipeline.rs

tests/pipeline.rs:
