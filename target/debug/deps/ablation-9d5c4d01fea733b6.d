/root/repo/target/debug/deps/ablation-9d5c4d01fea733b6.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-9d5c4d01fea733b6: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
