/root/repo/target/debug/deps/oracle-69cf1f9dece74fcb.d: crates/bdd/tests/oracle.rs

/root/repo/target/debug/deps/oracle-69cf1f9dece74fcb: crates/bdd/tests/oracle.rs

crates/bdd/tests/oracle.rs:
