/root/repo/target/debug/deps/golden-58c5f1b401b4afed.d: tests/golden.rs

/root/repo/target/debug/deps/golden-58c5f1b401b4afed: tests/golden.rs

tests/golden.rs:
