/root/repo/target/debug/deps/campion_gen-c3652fea4f98f6ce.d: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs

/root/repo/target/debug/deps/libcampion_gen-c3652fea4f98f6ce.rlib: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs

/root/repo/target/debug/deps/libcampion_gen-c3652fea4f98f6ce.rmeta: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs

crates/gen/src/lib.rs:
crates/gen/src/capirca.rs:
crates/gen/src/datacenter.rs:
crates/gen/src/university.rs:
