/root/repo/target/debug/deps/cex_count-efa3a100f1d13389.d: crates/bench/src/bin/cex_count.rs

/root/repo/target/debug/deps/cex_count-efa3a100f1d13389: crates/bench/src/bin/cex_count.rs

crates/bench/src/bin/cex_count.rs:
