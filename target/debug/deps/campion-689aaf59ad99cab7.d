/root/repo/target/debug/deps/campion-689aaf59ad99cab7.d: src/main.rs

/root/repo/target/debug/deps/campion-689aaf59ad99cab7: src/main.rs

src/main.rs:
