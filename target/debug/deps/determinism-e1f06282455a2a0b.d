/root/repo/target/debug/deps/determinism-e1f06282455a2a0b.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-e1f06282455a2a0b.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
