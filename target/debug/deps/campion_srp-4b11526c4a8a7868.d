/root/repo/target/debug/deps/campion_srp-4b11526c4a8a7868.d: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs crates/srp/src/proptests.rs crates/srp/src/tests.rs

/root/repo/target/debug/deps/campion_srp-4b11526c4a8a7868: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs crates/srp/src/proptests.rs crates/srp/src/tests.rs

crates/srp/src/lib.rs:
crates/srp/src/bgp.rs:
crates/srp/src/network.rs:
crates/srp/src/ospf.rs:
crates/srp/src/srp.rs:
crates/srp/src/proptests.rs:
crates/srp/src/tests.rs:
