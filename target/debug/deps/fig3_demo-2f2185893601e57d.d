/root/repo/target/debug/deps/fig3_demo-2f2185893601e57d.d: crates/bench/src/bin/fig3_demo.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_demo-2f2185893601e57d.rmeta: crates/bench/src/bin/fig3_demo.rs Cargo.toml

crates/bench/src/bin/fig3_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
