/root/repo/target/debug/deps/campion_gen-59b14de73dcfd097.d: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_gen-59b14de73dcfd097.rmeta: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/capirca.rs:
crates/gen/src/datacenter.rs:
crates/gen/src/university.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
