/root/repo/target/debug/deps/campion_gen-d6de80155ee4d31f.d: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs crates/gen/src/tests.rs

/root/repo/target/debug/deps/campion_gen-d6de80155ee4d31f: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs crates/gen/src/tests.rs

crates/gen/src/lib.rs:
crates/gen/src/capirca.rs:
crates/gen/src/datacenter.rs:
crates/gen/src/university.rs:
crates/gen/src/tests.rs:
