/root/repo/target/debug/deps/campion_minesweeper-7c6f1f63f1616a5e.d: crates/minesweeper/src/lib.rs

/root/repo/target/debug/deps/libcampion_minesweeper-7c6f1f63f1616a5e.rlib: crates/minesweeper/src/lib.rs

/root/repo/target/debug/deps/libcampion_minesweeper-7c6f1f63f1616a5e.rmeta: crates/minesweeper/src/lib.rs

crates/minesweeper/src/lib.rs:
