/root/repo/target/debug/deps/table7-9cc85128fea8647f.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-9cc85128fea8647f: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
