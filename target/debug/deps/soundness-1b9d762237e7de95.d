/root/repo/target/debug/deps/soundness-1b9d762237e7de95.d: tests/soundness.rs

/root/repo/target/debug/deps/soundness-1b9d762237e7de95: tests/soundness.rs

tests/soundness.rs:
