/root/repo/target/debug/deps/campion_symbolic-58597c10444849fa.d: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs crates/symbolic/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_symbolic-58597c10444849fa.rmeta: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs crates/symbolic/src/tests.rs Cargo.toml

crates/symbolic/src/lib.rs:
crates/symbolic/src/action.rs:
crates/symbolic/src/bits.rs:
crates/symbolic/src/packet_space.rs:
crates/symbolic/src/route_space.rs:
crates/symbolic/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
