/root/repo/target/debug/deps/campion_minesweeper-ce0d1f0daded1afa.d: crates/minesweeper/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_minesweeper-ce0d1f0daded1afa.rmeta: crates/minesweeper/src/lib.rs Cargo.toml

crates/minesweeper/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
