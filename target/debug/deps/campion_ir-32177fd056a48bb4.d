/root/repo/target/debug/deps/campion_ir-32177fd056a48bb4.d: crates/ir/src/lib.rs crates/ir/src/acl.rs crates/ir/src/error.rs crates/ir/src/lower_cisco.rs crates/ir/src/lower_juniper.rs crates/ir/src/policy.rs crates/ir/src/route.rs crates/ir/src/router.rs crates/ir/src/routing.rs crates/ir/src/translate.rs crates/ir/src/tests.rs

/root/repo/target/debug/deps/campion_ir-32177fd056a48bb4: crates/ir/src/lib.rs crates/ir/src/acl.rs crates/ir/src/error.rs crates/ir/src/lower_cisco.rs crates/ir/src/lower_juniper.rs crates/ir/src/policy.rs crates/ir/src/route.rs crates/ir/src/router.rs crates/ir/src/routing.rs crates/ir/src/translate.rs crates/ir/src/tests.rs

crates/ir/src/lib.rs:
crates/ir/src/acl.rs:
crates/ir/src/error.rs:
crates/ir/src/lower_cisco.rs:
crates/ir/src/lower_juniper.rs:
crates/ir/src/policy.rs:
crates/ir/src/route.rs:
crates/ir/src/router.rs:
crates/ir/src/routing.rs:
crates/ir/src/translate.rs:
crates/ir/src/tests.rs:
