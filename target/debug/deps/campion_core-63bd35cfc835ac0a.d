/root/repo/target/debug/deps/campion_core-63bd35cfc835ac0a.d: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs crates/core/src/tests.rs

/root/repo/target/debug/deps/campion_core-63bd35cfc835ac0a: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs crates/core/src/tests.rs

crates/core/src/lib.rs:
crates/core/src/commloc.rs:
crates/core/src/driver.rs:
crates/core/src/headerloc.rs:
crates/core/src/matching.rs:
crates/core/src/portloc.rs:
crates/core/src/report.rs:
crates/core/src/semantic.rs:
crates/core/src/structural.rs:
crates/core/src/tests.rs:
