/root/repo/target/debug/deps/fig3_demo-f421913a6c67c2ce.d: crates/bench/src/bin/fig3_demo.rs

/root/repo/target/debug/deps/fig3_demo-f421913a6c67c2ce: crates/bench/src/bin/fig3_demo.rs

crates/bench/src/bin/fig3_demo.rs:
