/root/repo/target/debug/deps/table3-ed7938cb3b08af8e.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ed7938cb3b08af8e: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
