/root/repo/target/debug/deps/table2-ea87f78dae67f89a.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ea87f78dae67f89a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
