/root/repo/target/debug/deps/campion_gen-c514b51a14aaddd9.d: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs crates/gen/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_gen-c514b51a14aaddd9.rmeta: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs crates/gen/src/tests.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/capirca.rs:
crates/gen/src/datacenter.rs:
crates/gen/src/university.rs:
crates/gen/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
