/root/repo/target/debug/deps/campion-05162eff8d70fd5c.d: src/lib.rs

/root/repo/target/debug/deps/campion-05162eff8d70fd5c: src/lib.rs

src/lib.rs:
