/root/repo/target/debug/deps/ablation-08777d8eb2a2d929.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-08777d8eb2a2d929.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
