/root/repo/target/debug/deps/cli-17682ea5aa3fcbcf.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-17682ea5aa3fcbcf.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_campion=placeholder:campion
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
