/root/repo/target/debug/deps/table4-9e903d9c40d56436.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-9e903d9c40d56436: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
