/root/repo/target/debug/deps/table6-8dadc11d2b94a6b0.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-8dadc11d2b94a6b0: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
