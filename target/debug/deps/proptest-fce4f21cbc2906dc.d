/root/repo/target/debug/deps/proptest-fce4f21cbc2906dc.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-fce4f21cbc2906dc.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-fce4f21cbc2906dc.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
