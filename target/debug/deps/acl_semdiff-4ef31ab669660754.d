/root/repo/target/debug/deps/acl_semdiff-4ef31ab669660754.d: crates/bench/benches/acl_semdiff.rs Cargo.toml

/root/repo/target/debug/deps/libacl_semdiff-4ef31ab669660754.rmeta: crates/bench/benches/acl_semdiff.rs Cargo.toml

crates/bench/benches/acl_semdiff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
