/root/repo/target/debug/deps/campion_bench-ee1f55f152ab0811.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/campion_bench-ee1f55f152ab0811: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
