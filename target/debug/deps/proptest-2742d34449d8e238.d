/root/repo/target/debug/deps/proptest-2742d34449d8e238.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-2742d34449d8e238: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
