/root/repo/target/debug/deps/scalability-f1ce875903e42777.d: crates/bench/src/bin/scalability.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-f1ce875903e42777.rmeta: crates/bench/src/bin/scalability.rs Cargo.toml

crates/bench/src/bin/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
