/root/repo/target/debug/deps/table8-b27264028831ebad.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-b27264028831ebad: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
