/root/repo/target/debug/deps/oracle-342cbef6bb86d69b.d: crates/bdd/tests/oracle.rs Cargo.toml

/root/repo/target/debug/deps/liboracle-342cbef6bb86d69b.rmeta: crates/bdd/tests/oracle.rs Cargo.toml

crates/bdd/tests/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
