/root/repo/target/debug/deps/table6-ecd3f72f00576eb0.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-ecd3f72f00576eb0: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
