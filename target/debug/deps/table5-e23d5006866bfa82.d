/root/repo/target/debug/deps/table5-e23d5006866bfa82.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-e23d5006866bfa82.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
