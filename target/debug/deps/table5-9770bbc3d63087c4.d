/root/repo/target/debug/deps/table5-9770bbc3d63087c4.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-9770bbc3d63087c4: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
