/root/repo/target/debug/deps/campion-3c7f185b14e6523e.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcampion-3c7f185b14e6523e.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
