/root/repo/target/debug/deps/fig3_demo-33ae4df5cca363e9.d: crates/bench/src/bin/fig3_demo.rs

/root/repo/target/debug/deps/fig3_demo-33ae4df5cca363e9: crates/bench/src/bin/fig3_demo.rs

crates/bench/src/bin/fig3_demo.rs:
