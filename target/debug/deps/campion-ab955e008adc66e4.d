/root/repo/target/debug/deps/campion-ab955e008adc66e4.d: src/main.rs

/root/repo/target/debug/deps/campion-ab955e008adc66e4: src/main.rs

src/main.rs:
