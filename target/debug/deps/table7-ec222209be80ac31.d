/root/repo/target/debug/deps/table7-ec222209be80ac31.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-ec222209be80ac31: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
