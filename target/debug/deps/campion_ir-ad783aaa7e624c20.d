/root/repo/target/debug/deps/campion_ir-ad783aaa7e624c20.d: crates/ir/src/lib.rs crates/ir/src/acl.rs crates/ir/src/error.rs crates/ir/src/lower_cisco.rs crates/ir/src/lower_juniper.rs crates/ir/src/policy.rs crates/ir/src/route.rs crates/ir/src/router.rs crates/ir/src/routing.rs crates/ir/src/translate.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_ir-ad783aaa7e624c20.rmeta: crates/ir/src/lib.rs crates/ir/src/acl.rs crates/ir/src/error.rs crates/ir/src/lower_cisco.rs crates/ir/src/lower_juniper.rs crates/ir/src/policy.rs crates/ir/src/route.rs crates/ir/src/router.rs crates/ir/src/routing.rs crates/ir/src/translate.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/acl.rs:
crates/ir/src/error.rs:
crates/ir/src/lower_cisco.rs:
crates/ir/src/lower_juniper.rs:
crates/ir/src/policy.rs:
crates/ir/src/route.rs:
crates/ir/src/router.rs:
crates/ir/src/routing.rs:
crates/ir/src/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
