/root/repo/target/debug/deps/campion_bench-8b2c6236df084aa8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_bench-8b2c6236df084aa8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
