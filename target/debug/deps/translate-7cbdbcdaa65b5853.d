/root/repo/target/debug/deps/translate-7cbdbcdaa65b5853.d: tests/translate.rs Cargo.toml

/root/repo/target/debug/deps/libtranslate-7cbdbcdaa65b5853.rmeta: tests/translate.rs Cargo.toml

tests/translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
