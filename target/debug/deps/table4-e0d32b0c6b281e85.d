/root/repo/target/debug/deps/table4-e0d32b0c6b281e85.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-e0d32b0c6b281e85.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
