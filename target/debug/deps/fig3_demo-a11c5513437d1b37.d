/root/repo/target/debug/deps/fig3_demo-a11c5513437d1b37.d: crates/bench/src/bin/fig3_demo.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_demo-a11c5513437d1b37.rmeta: crates/bench/src/bin/fig3_demo.rs Cargo.toml

crates/bench/src/bin/fig3_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
