/root/repo/target/debug/deps/campion_net-fc3ef5b84717feae.d: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs crates/net/src/tests.rs

/root/repo/target/debug/deps/campion_net-fc3ef5b84717feae: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs crates/net/src/tests.rs

crates/net/src/lib.rs:
crates/net/src/community.rs:
crates/net/src/flow.rs:
crates/net/src/prefix.rs:
crates/net/src/range.rs:
crates/net/src/regex.rs:
crates/net/src/regex_dfa.rs:
crates/net/src/wildcard.rs:
crates/net/src/tests.rs:
