/root/repo/target/debug/deps/campion_core-bbef8d7511383a37.d: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs crates/core/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_core-bbef8d7511383a37.rmeta: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs crates/core/src/tests.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/commloc.rs:
crates/core/src/driver.rs:
crates/core/src/headerloc.rs:
crates/core/src/matching.rs:
crates/core/src/portloc.rs:
crates/core/src/report.rs:
crates/core/src/semantic.rs:
crates/core/src/structural.rs:
crates/core/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
