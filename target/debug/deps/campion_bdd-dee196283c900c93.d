/root/repo/target/debug/deps/campion_bdd-dee196283c900c93.d: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs crates/bdd/src/tests.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_bdd-dee196283c900c93.rmeta: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs crates/bdd/src/tests.rs Cargo.toml

crates/bdd/src/lib.rs:
crates/bdd/src/cube.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
