/root/repo/target/debug/deps/campion_cfg-5fd63be0373a31f8.d: crates/cfg/src/lib.rs crates/cfg/src/cisco/mod.rs crates/cfg/src/cisco/ast.rs crates/cfg/src/cisco/parser.rs crates/cfg/src/cisco/tests.rs crates/cfg/src/juniper/mod.rs crates/cfg/src/juniper/ast.rs crates/cfg/src/juniper/parser.rs crates/cfg/src/juniper/setstyle.rs crates/cfg/src/juniper/tree.rs crates/cfg/src/juniper/tests.rs crates/cfg/src/detect.rs crates/cfg/src/error.rs crates/cfg/src/samples.rs crates/cfg/src/span.rs crates/cfg/src/robustness.rs

/root/repo/target/debug/deps/campion_cfg-5fd63be0373a31f8: crates/cfg/src/lib.rs crates/cfg/src/cisco/mod.rs crates/cfg/src/cisco/ast.rs crates/cfg/src/cisco/parser.rs crates/cfg/src/cisco/tests.rs crates/cfg/src/juniper/mod.rs crates/cfg/src/juniper/ast.rs crates/cfg/src/juniper/parser.rs crates/cfg/src/juniper/setstyle.rs crates/cfg/src/juniper/tree.rs crates/cfg/src/juniper/tests.rs crates/cfg/src/detect.rs crates/cfg/src/error.rs crates/cfg/src/samples.rs crates/cfg/src/span.rs crates/cfg/src/robustness.rs

crates/cfg/src/lib.rs:
crates/cfg/src/cisco/mod.rs:
crates/cfg/src/cisco/ast.rs:
crates/cfg/src/cisco/parser.rs:
crates/cfg/src/cisco/tests.rs:
crates/cfg/src/juniper/mod.rs:
crates/cfg/src/juniper/ast.rs:
crates/cfg/src/juniper/parser.rs:
crates/cfg/src/juniper/setstyle.rs:
crates/cfg/src/juniper/tree.rs:
crates/cfg/src/juniper/tests.rs:
crates/cfg/src/detect.rs:
crates/cfg/src/error.rs:
crates/cfg/src/samples.rs:
crates/cfg/src/span.rs:
crates/cfg/src/robustness.rs:
