/root/repo/target/debug/deps/campion_symbolic-0ccfaf15df5e9eaf.d: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs Cargo.toml

/root/repo/target/debug/deps/libcampion_symbolic-0ccfaf15df5e9eaf.rmeta: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs Cargo.toml

crates/symbolic/src/lib.rs:
crates/symbolic/src/action.rs:
crates/symbolic/src/bits.rs:
crates/symbolic/src/packet_space.rs:
crates/symbolic/src/route_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
