/root/repo/target/debug/deps/golden-75b99bac8c90d87e.d: tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-75b99bac8c90d87e.rmeta: tests/golden.rs Cargo.toml

tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
