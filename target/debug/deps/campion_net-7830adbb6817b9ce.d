/root/repo/target/debug/deps/campion_net-7830adbb6817b9ce.d: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs

/root/repo/target/debug/deps/libcampion_net-7830adbb6817b9ce.rlib: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs

/root/repo/target/debug/deps/libcampion_net-7830adbb6817b9ce.rmeta: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs

crates/net/src/lib.rs:
crates/net/src/community.rs:
crates/net/src/flow.rs:
crates/net/src/prefix.rs:
crates/net/src/range.rs:
crates/net/src/regex.rs:
crates/net/src/regex_dfa.rs:
crates/net/src/wildcard.rs:
