/root/repo/target/debug/deps/table5-91c2b3dc2d5057c3.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-91c2b3dc2d5057c3: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
