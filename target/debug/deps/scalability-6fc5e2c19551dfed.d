/root/repo/target/debug/deps/scalability-6fc5e2c19551dfed.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-6fc5e2c19551dfed: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
