/root/repo/target/debug/deps/campion_srp-0403591aca8a4f85.d: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs

/root/repo/target/debug/deps/libcampion_srp-0403591aca8a4f85.rlib: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs

/root/repo/target/debug/deps/libcampion_srp-0403591aca8a4f85.rmeta: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs

crates/srp/src/lib.rs:
crates/srp/src/bgp.rs:
crates/srp/src/network.rs:
crates/srp/src/ospf.rs:
crates/srp/src/srp.rs:
