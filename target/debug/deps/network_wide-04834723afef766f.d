/root/repo/target/debug/deps/network_wide-04834723afef766f.d: tests/network_wide.rs

/root/repo/target/debug/deps/network_wide-04834723afef766f: tests/network_wide.rs

tests/network_wide.rs:
