/root/repo/target/debug/deps/campion_bdd-5a173e75c9973554.d: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs

/root/repo/target/debug/deps/libcampion_bdd-5a173e75c9973554.rlib: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs

/root/repo/target/debug/deps/libcampion_bdd-5a173e75c9973554.rmeta: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs

crates/bdd/src/lib.rs:
crates/bdd/src/cube.rs:
crates/bdd/src/manager.rs:
