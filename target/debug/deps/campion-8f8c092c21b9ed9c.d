/root/repo/target/debug/deps/campion-8f8c092c21b9ed9c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcampion-8f8c092c21b9ed9c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
