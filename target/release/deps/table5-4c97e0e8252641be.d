/root/repo/target/release/deps/table5-4c97e0e8252641be.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-4c97e0e8252641be: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
