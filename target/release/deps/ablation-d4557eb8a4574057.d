/root/repo/target/release/deps/ablation-d4557eb8a4574057.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-d4557eb8a4574057: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
