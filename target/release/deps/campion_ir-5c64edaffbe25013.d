/root/repo/target/release/deps/campion_ir-5c64edaffbe25013.d: crates/ir/src/lib.rs crates/ir/src/acl.rs crates/ir/src/error.rs crates/ir/src/lower_cisco.rs crates/ir/src/lower_juniper.rs crates/ir/src/policy.rs crates/ir/src/route.rs crates/ir/src/router.rs crates/ir/src/routing.rs crates/ir/src/translate.rs

/root/repo/target/release/deps/libcampion_ir-5c64edaffbe25013.rlib: crates/ir/src/lib.rs crates/ir/src/acl.rs crates/ir/src/error.rs crates/ir/src/lower_cisco.rs crates/ir/src/lower_juniper.rs crates/ir/src/policy.rs crates/ir/src/route.rs crates/ir/src/router.rs crates/ir/src/routing.rs crates/ir/src/translate.rs

/root/repo/target/release/deps/libcampion_ir-5c64edaffbe25013.rmeta: crates/ir/src/lib.rs crates/ir/src/acl.rs crates/ir/src/error.rs crates/ir/src/lower_cisco.rs crates/ir/src/lower_juniper.rs crates/ir/src/policy.rs crates/ir/src/route.rs crates/ir/src/router.rs crates/ir/src/routing.rs crates/ir/src/translate.rs

crates/ir/src/lib.rs:
crates/ir/src/acl.rs:
crates/ir/src/error.rs:
crates/ir/src/lower_cisco.rs:
crates/ir/src/lower_juniper.rs:
crates/ir/src/policy.rs:
crates/ir/src/route.rs:
crates/ir/src/router.rs:
crates/ir/src/routing.rs:
crates/ir/src/translate.rs:
