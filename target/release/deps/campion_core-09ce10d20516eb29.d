/root/repo/target/release/deps/campion_core-09ce10d20516eb29.d: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs

/root/repo/target/release/deps/libcampion_core-09ce10d20516eb29.rlib: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs

/root/repo/target/release/deps/libcampion_core-09ce10d20516eb29.rmeta: crates/core/src/lib.rs crates/core/src/commloc.rs crates/core/src/driver.rs crates/core/src/headerloc.rs crates/core/src/matching.rs crates/core/src/portloc.rs crates/core/src/report.rs crates/core/src/semantic.rs crates/core/src/structural.rs

crates/core/src/lib.rs:
crates/core/src/commloc.rs:
crates/core/src/driver.rs:
crates/core/src/headerloc.rs:
crates/core/src/matching.rs:
crates/core/src/portloc.rs:
crates/core/src/report.rs:
crates/core/src/semantic.rs:
crates/core/src/structural.rs:
