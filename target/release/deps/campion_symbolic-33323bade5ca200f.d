/root/repo/target/release/deps/campion_symbolic-33323bade5ca200f.d: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs

/root/repo/target/release/deps/libcampion_symbolic-33323bade5ca200f.rlib: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs

/root/repo/target/release/deps/libcampion_symbolic-33323bade5ca200f.rmeta: crates/symbolic/src/lib.rs crates/symbolic/src/action.rs crates/symbolic/src/bits.rs crates/symbolic/src/packet_space.rs crates/symbolic/src/route_space.rs

crates/symbolic/src/lib.rs:
crates/symbolic/src/action.rs:
crates/symbolic/src/bits.rs:
crates/symbolic/src/packet_space.rs:
crates/symbolic/src/route_space.rs:
