/root/repo/target/release/deps/fig3_demo-74dba951d2af3cb9.d: crates/bench/src/bin/fig3_demo.rs

/root/repo/target/release/deps/fig3_demo-74dba951d2af3cb9: crates/bench/src/bin/fig3_demo.rs

crates/bench/src/bin/fig3_demo.rs:
