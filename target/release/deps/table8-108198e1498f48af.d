/root/repo/target/release/deps/table8-108198e1498f48af.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-108198e1498f48af: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
