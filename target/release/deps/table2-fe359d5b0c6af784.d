/root/repo/target/release/deps/table2-fe359d5b0c6af784.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-fe359d5b0c6af784: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
