/root/repo/target/release/deps/table3-745b72eb74b5721c.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-745b72eb74b5721c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
