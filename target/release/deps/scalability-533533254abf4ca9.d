/root/repo/target/release/deps/scalability-533533254abf4ca9.d: crates/bench/src/bin/scalability.rs

/root/repo/target/release/deps/scalability-533533254abf4ca9: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
