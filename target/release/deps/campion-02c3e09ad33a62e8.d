/root/repo/target/release/deps/campion-02c3e09ad33a62e8.d: src/lib.rs

/root/repo/target/release/deps/libcampion-02c3e09ad33a62e8.rlib: src/lib.rs

/root/repo/target/release/deps/libcampion-02c3e09ad33a62e8.rmeta: src/lib.rs

src/lib.rs:
