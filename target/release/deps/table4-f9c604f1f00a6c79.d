/root/repo/target/release/deps/table4-f9c604f1f00a6c79.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f9c604f1f00a6c79: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
