/root/repo/target/release/deps/campion_gen-95b9c1cabb2e18dc.d: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs

/root/repo/target/release/deps/libcampion_gen-95b9c1cabb2e18dc.rlib: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs

/root/repo/target/release/deps/libcampion_gen-95b9c1cabb2e18dc.rmeta: crates/gen/src/lib.rs crates/gen/src/capirca.rs crates/gen/src/datacenter.rs crates/gen/src/university.rs

crates/gen/src/lib.rs:
crates/gen/src/capirca.rs:
crates/gen/src/datacenter.rs:
crates/gen/src/university.rs:
