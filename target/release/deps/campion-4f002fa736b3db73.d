/root/repo/target/release/deps/campion-4f002fa736b3db73.d: src/main.rs

/root/repo/target/release/deps/campion-4f002fa736b3db73: src/main.rs

src/main.rs:
