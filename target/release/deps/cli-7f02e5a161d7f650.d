/root/repo/target/release/deps/cli-7f02e5a161d7f650.d: tests/cli.rs

/root/repo/target/release/deps/cli-7f02e5a161d7f650: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_campion=/root/repo/target/release/campion
