/root/repo/target/release/deps/campion_bdd-f6fbb3b4a3ad83f9.d: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs crates/bdd/src/tests.rs

/root/repo/target/release/deps/campion_bdd-f6fbb3b4a3ad83f9: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs crates/bdd/src/tests.rs

crates/bdd/src/lib.rs:
crates/bdd/src/cube.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/tests.rs:
