/root/repo/target/release/deps/table6-8cfc461bfd33179d.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-8cfc461bfd33179d: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
