/root/repo/target/release/deps/campion_minesweeper-c3c12589c2e64667.d: crates/minesweeper/src/lib.rs

/root/repo/target/release/deps/libcampion_minesweeper-c3c12589c2e64667.rlib: crates/minesweeper/src/lib.rs

/root/repo/target/release/deps/libcampion_minesweeper-c3c12589c2e64667.rmeta: crates/minesweeper/src/lib.rs

crates/minesweeper/src/lib.rs:
