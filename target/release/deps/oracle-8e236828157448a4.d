/root/repo/target/release/deps/oracle-8e236828157448a4.d: crates/bdd/tests/oracle.rs

/root/repo/target/release/deps/oracle-8e236828157448a4: crates/bdd/tests/oracle.rs

crates/bdd/tests/oracle.rs:
