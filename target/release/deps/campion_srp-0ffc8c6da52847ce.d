/root/repo/target/release/deps/campion_srp-0ffc8c6da52847ce.d: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs

/root/repo/target/release/deps/libcampion_srp-0ffc8c6da52847ce.rlib: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs

/root/repo/target/release/deps/libcampion_srp-0ffc8c6da52847ce.rmeta: crates/srp/src/lib.rs crates/srp/src/bgp.rs crates/srp/src/network.rs crates/srp/src/ospf.rs crates/srp/src/srp.rs

crates/srp/src/lib.rs:
crates/srp/src/bgp.rs:
crates/srp/src/network.rs:
crates/srp/src/ospf.rs:
crates/srp/src/srp.rs:
