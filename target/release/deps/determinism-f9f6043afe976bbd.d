/root/repo/target/release/deps/determinism-f9f6043afe976bbd.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-f9f6043afe976bbd: tests/determinism.rs

tests/determinism.rs:
