/root/repo/target/release/deps/campion_bench-3ac245bb074f5a88.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcampion_bench-3ac245bb074f5a88.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcampion_bench-3ac245bb074f5a88.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
