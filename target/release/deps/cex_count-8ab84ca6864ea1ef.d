/root/repo/target/release/deps/cex_count-8ab84ca6864ea1ef.d: crates/bench/src/bin/cex_count.rs

/root/repo/target/release/deps/cex_count-8ab84ca6864ea1ef: crates/bench/src/bin/cex_count.rs

crates/bench/src/bin/cex_count.rs:
