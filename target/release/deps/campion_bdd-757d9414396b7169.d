/root/repo/target/release/deps/campion_bdd-757d9414396b7169.d: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs

/root/repo/target/release/deps/libcampion_bdd-757d9414396b7169.rlib: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs

/root/repo/target/release/deps/libcampion_bdd-757d9414396b7169.rmeta: crates/bdd/src/lib.rs crates/bdd/src/cube.rs crates/bdd/src/manager.rs

crates/bdd/src/lib.rs:
crates/bdd/src/cube.rs:
crates/bdd/src/manager.rs:
