/root/repo/target/release/deps/campion_net-d6bd0b57499bd6f1.d: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs

/root/repo/target/release/deps/libcampion_net-d6bd0b57499bd6f1.rlib: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs

/root/repo/target/release/deps/libcampion_net-d6bd0b57499bd6f1.rmeta: crates/net/src/lib.rs crates/net/src/community.rs crates/net/src/flow.rs crates/net/src/prefix.rs crates/net/src/range.rs crates/net/src/regex.rs crates/net/src/regex_dfa.rs crates/net/src/wildcard.rs

crates/net/src/lib.rs:
crates/net/src/community.rs:
crates/net/src/flow.rs:
crates/net/src/prefix.rs:
crates/net/src/range.rs:
crates/net/src/regex.rs:
crates/net/src/regex_dfa.rs:
crates/net/src/wildcard.rs:
