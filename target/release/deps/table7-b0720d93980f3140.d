/root/repo/target/release/deps/table7-b0720d93980f3140.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-b0720d93980f3140: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
