/root/repo/target/release/deps/campion_cfg-4beb38e55aadcfc0.d: crates/cfg/src/lib.rs crates/cfg/src/cisco/mod.rs crates/cfg/src/cisco/ast.rs crates/cfg/src/cisco/parser.rs crates/cfg/src/juniper/mod.rs crates/cfg/src/juniper/ast.rs crates/cfg/src/juniper/parser.rs crates/cfg/src/juniper/setstyle.rs crates/cfg/src/juniper/tree.rs crates/cfg/src/detect.rs crates/cfg/src/error.rs crates/cfg/src/samples.rs crates/cfg/src/span.rs

/root/repo/target/release/deps/libcampion_cfg-4beb38e55aadcfc0.rlib: crates/cfg/src/lib.rs crates/cfg/src/cisco/mod.rs crates/cfg/src/cisco/ast.rs crates/cfg/src/cisco/parser.rs crates/cfg/src/juniper/mod.rs crates/cfg/src/juniper/ast.rs crates/cfg/src/juniper/parser.rs crates/cfg/src/juniper/setstyle.rs crates/cfg/src/juniper/tree.rs crates/cfg/src/detect.rs crates/cfg/src/error.rs crates/cfg/src/samples.rs crates/cfg/src/span.rs

/root/repo/target/release/deps/libcampion_cfg-4beb38e55aadcfc0.rmeta: crates/cfg/src/lib.rs crates/cfg/src/cisco/mod.rs crates/cfg/src/cisco/ast.rs crates/cfg/src/cisco/parser.rs crates/cfg/src/juniper/mod.rs crates/cfg/src/juniper/ast.rs crates/cfg/src/juniper/parser.rs crates/cfg/src/juniper/setstyle.rs crates/cfg/src/juniper/tree.rs crates/cfg/src/detect.rs crates/cfg/src/error.rs crates/cfg/src/samples.rs crates/cfg/src/span.rs

crates/cfg/src/lib.rs:
crates/cfg/src/cisco/mod.rs:
crates/cfg/src/cisco/ast.rs:
crates/cfg/src/cisco/parser.rs:
crates/cfg/src/juniper/mod.rs:
crates/cfg/src/juniper/ast.rs:
crates/cfg/src/juniper/parser.rs:
crates/cfg/src/juniper/setstyle.rs:
crates/cfg/src/juniper/tree.rs:
crates/cfg/src/detect.rs:
crates/cfg/src/error.rs:
crates/cfg/src/samples.rs:
crates/cfg/src/span.rs:
