//! Quickstart: compare the paper's Figure 1 route maps and print the
//! localized differences (the paper's Table 2).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use campion::cfg::parse_config;
use campion::cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
use campion::core::{compare_routers, CampionOptions};
use campion::ir::lower;

fn main() {
    // 1. Parse both vendor configurations (vendor auto-detected).
    let cisco = parse_config(FIGURE1_CISCO).expect("valid Cisco config");
    let juniper = parse_config(FIGURE1_JUNIPER).expect("valid Juniper config");

    // 2. Lower into the vendor-independent model.
    let r1 = lower(&cisco).expect("lowerable");
    let r2 = lower(&juniper).expect("lowerable");

    // 3. Compare and print. Campion finds *all* behavioral differences and
    //    localizes each to the affected prefix ranges (header localization)
    //    and the responsible configuration lines (text localization).
    let report = compare_routers(&r1, &r2, &CampionOptions::default());
    println!("{report}");

    assert_eq!(
        report.route_map_diffs.len(),
        2,
        "Figure 1 hides exactly two bugs"
    );
}
