//! Side-by-side: Campion's localized output versus the Minesweeper-style
//! monolithic baseline on the same inputs (the paper's §2 comparison —
//! Tables 2 & 3 for route maps, Tables 4 & 5 for static routes).
//!
//! ```sh
//! cargo run --example minesweeper_vs_campion
//! ```

use campion::cfg::parse_config;
use campion::cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER, STATIC_CISCO, STATIC_JUNIPER};
use campion::core::{compare_routers, CampionOptions};
use campion::ir::lower;
use campion::minesweeper;

fn main() {
    let c = lower(&parse_config(FIGURE1_CISCO).expect("parse")).expect("lower");
    let j = lower(&parse_config(FIGURE1_JUNIPER).expect("parse")).expect("lower");

    println!("################ Route maps (Figure 1) ################\n");
    println!("---- Campion (all differences, header + text localization) ----\n");
    let report = compare_routers(&c, &j, &CampionOptions::default());
    for (i, d) in report.route_map_diffs.iter().enumerate() {
        println!("Difference {}:\n{d}", i + 1);
    }

    println!("---- Minesweeper baseline (single concrete counterexample) ----\n");
    let cex = minesweeper::check_route_maps(&c.policies["POL"], &j.policies["POL"])
        .expect("policies differ");
    println!("{cex}\n");
    println!(
        "(no indication of the second bug, the impacted prefix ranges, or\n\
         the responsible configuration lines)\n"
    );

    println!("################ Static routes (§2.2) ################\n");
    let sc = lower(&parse_config(STATIC_CISCO).expect("parse")).expect("lower");
    let sj = lower(&parse_config(STATIC_JUNIPER).expect("parse")).expect("lower");

    println!("---- Campion (structural check, Table 4) ----\n");
    let sreport = compare_routers(&sc, &sj, &CampionOptions::default());
    for s in &sreport.structural {
        println!("{s}");
    }

    println!("\n---- Minesweeper baseline (Table 5) ----\n");
    let scex = minesweeper::check_static_routes(&sc, &sj).expect("statics differ");
    println!("{scex}");
}
