//! Backup-router audit (the paper's §5.2 university study).
//!
//! Compares the two multi-vendor backup pairs of the synthetic university
//! network — core and border — and prints a per-policy summary in the
//! shape of the paper's Table 8, followed by the full localized reports.
//!
//! ```sh
//! cargo run --example backup_audit
//! ```

use std::collections::BTreeMap;

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions, CampionReport};
use campion::gen::{university_border_pair, university_core_pair};
use campion::ir::lower;

fn audit(label: &str, cisco: &str, juniper: &str) -> CampionReport {
    let r1 = lower(&parse_config(cisco).expect("parse cisco")).expect("lower cisco");
    let r2 = lower(&parse_config(juniper).expect("parse juniper")).expect("lower juniper");
    let report = compare_routers(&r1, &r2, &CampionOptions::default());

    println!("== {label}: {} vs {} ==", report.router1, report.router2);
    let mut per_policy: BTreeMap<String, usize> = BTreeMap::new();
    for d in &report.route_map_diffs {
        *per_policy.entry(d.name1.clone()).or_default() += 1;
    }
    println!("{:<12} {:>22}", "Route Map", "Outputted Differences");
    for (policy, n) in &per_policy {
        println!("{policy:<12} {n:>22}");
    }
    let structural: BTreeMap<&str, usize> =
        report.structural.iter().fold(BTreeMap::new(), |mut m, s| {
            *m.entry(s.component.as_str()).or_default() += 1;
            m
        });
    for (component, n) in &structural {
        println!("{component:<24} {n:>10} finding(s)");
    }
    println!();
    report
}

fn main() {
    let (core_c, core_j) = university_core_pair();
    let core = audit("Core routers", &core_c, &core_j);

    let (border_c, border_j) = university_border_pair();
    let border = audit("Border routers", &border_c, &border_j);

    println!("---- full localized reports ----\n");
    println!("{core}");
    println!("{border}");

    // The counts the paper reports in Table 8(a).
    let count = |r: &CampionReport, name: &str| {
        r.route_map_diffs.iter().filter(|d| d.name1 == name).count()
    };
    assert_eq!(count(&core, "EXPORT1"), 5);
    assert_eq!(count(&core, "EXPORT2"), 1);
    assert_eq!(count(&border, "EXPORT3"), 1);
    assert_eq!(count(&border, "EXPORT4"), 1);
    assert_eq!(count(&border, "EXPORT5"), 2);
    assert_eq!(count(&border, "IMPORT"), 0);
}
