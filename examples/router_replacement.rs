//! Router replacement validation (the paper's Scenario 2, §5.1).
//!
//! Reads two configuration files — the router being decommissioned and its
//! manually translated replacement — and exits nonzero when Campion finds
//! behavioral differences, so the check slots into a change-management
//! pipeline. Without arguments it demonstrates on a generated replacement
//! pair carrying the paper's route-reflector local-preference bug.
//!
//! ```sh
//! cargo run --example router_replacement -- old.cfg new.cfg
//! cargo run --example router_replacement          # built-in demo pair
//! ```

use std::process::ExitCode;

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions};
use campion::gen::scenario2;
use campion::ir::lower;

fn compare_texts(old_text: &str, new_text: &str) -> ExitCode {
    let old_cfg = match parse_config(old_text)
        .map_err(|e| e.to_string())
        .and_then(|c| lower(&c).map_err(|e| e.to_string()))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: old configuration: {e}");
            return ExitCode::from(2);
        }
    };
    let new_cfg = match parse_config(new_text)
        .map_err(|e| e.to_string())
        .and_then(|c| lower(&c).map_err(|e| e.to_string()))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: new configuration: {e}");
            return ExitCode::from(2);
        }
    };
    let report = compare_routers(&old_cfg, &new_cfg, &CampionOptions::default());
    println!("{report}");
    if report.is_equivalent() {
        println!("OK: replacement is behaviorally equivalent — safe to proceed.");
        ExitCode::SUCCESS
    } else {
        println!(
            "BLOCKED: {} difference(s) must be resolved before the replacement.",
            report.total_differences()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [old_path, new_path] => {
            let old_text = match std::fs::read_to_string(old_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {old_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let new_text = match std::fs::read_to_string(new_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {new_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            compare_texts(&old_text, &new_text)
        }
        [] => {
            // Demo: the route-reflector replacement with the wrong
            // local-preference — the bug the paper says would have caused a
            // severe outage.
            println!("(demo mode: generated route-reflector replacement pair)\n");
            let pair = scenario2(4, 2002)
                .into_iter()
                .next()
                .expect("pairs generated");
            let code = compare_texts(&pair.cisco, &pair.juniper);
            assert_eq!(code, ExitCode::FAILURE, "the demo pair carries a bug");
            // The demo succeeded in *finding* the bug.
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: router_replacement [<old.cfg> <new.cfg>]");
            ExitCode::from(2)
        }
    }
}
