//! The parallel driver must be invisible in the output: for any worker
//! count, the rendered `CampionReport` is byte-identical to a sequential
//! run. Exercised on the Table 6 scenario generators, which produce
//! many-component router pairs (route maps, ACLs, structural families) —
//! enough distinct work items that the jobs=8 run genuinely interleaves.

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions, GcMode};
use campion::gen::{scenario1, scenario2, scenario3};
use campion::ir::{lower, RouterIr};

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).expect("generated config parses")).expect("generated config lowers")
}

fn opts_with_jobs(jobs: usize) -> CampionOptions {
    CampionOptions {
        jobs,
        ..CampionOptions::default()
    }
}

/// Render every scenario pair under the given engine, worker count and GC
/// mode, concatenated.
fn render_all_engine(
    pairs: &[campion::gen::ScenarioPair],
    shared: bool,
    jobs: usize,
    gc: GcMode,
) -> String {
    let opts = CampionOptions {
        jobs,
        gc,
        shared_manager: shared,
        ..CampionOptions::default()
    };
    let mut out = String::new();
    for p in pairs {
        let report = compare_routers(&load(&p.cisco), &load(&p.juniper), &opts);
        out.push_str(&format!("### {}\n{report}\n", p.name));
    }
    out
}

/// Render every scenario pair under the given worker count and GC mode,
/// concatenated.
fn render_all_gc(pairs: &[campion::gen::ScenarioPair], jobs: usize, gc: GcMode) -> String {
    render_all_engine(pairs, false, jobs, gc)
}

/// Render every scenario pair under the given worker count, concatenated.
fn render_all(pairs: &[campion::gen::ScenarioPair], jobs: usize) -> String {
    render_all_gc(pairs, jobs, GcMode::default())
}

#[test]
fn scenario1_reports_identical_across_worker_counts() {
    let pairs = scenario1(8, 11);
    let sequential = render_all(&pairs, 1);
    let parallel = render_all(&pairs, 8);
    assert_eq!(sequential, parallel);
    assert!(!sequential.is_empty());
}

#[test]
fn scenario2_reports_identical_across_worker_counts() {
    let pairs = scenario2(6, 22);
    assert_eq!(render_all(&pairs, 1), render_all(&pairs, 8));
}

#[test]
fn scenario3_reports_identical_across_worker_counts() {
    let pairs = scenario3(4, 60, 33);
    assert_eq!(render_all(&pairs, 1), render_all(&pairs, 8));
}

#[test]
fn auto_jobs_matches_sequential() {
    // jobs = 0 (auto: one worker per hardware thread) must also render
    // identically — this is the default every CLI run takes.
    let pairs = scenario3(3, 40, 44);
    assert_eq!(render_all(&pairs, 1), render_all(&pairs, 0));
}

#[test]
fn reports_identical_across_gc_modes_and_worker_counts() {
    // Garbage collection must be semantically invisible: for every GC mode
    // (including collecting at *every* safe point) and any worker count,
    // the rendered report is byte-identical. This is the golden-report
    // regression for the reachable-mark collector — a GC bug that frees a
    // live node or breaks canonicity shows up here as a diverging report.
    let pairs = scenario2(4, 17);
    let baseline = render_all_gc(&pairs, 1, GcMode::Off);
    for gc in [GcMode::Off, GcMode::Auto, GcMode::Aggressive] {
        for jobs in [1, 8] {
            assert_eq!(
                baseline,
                render_all_gc(&pairs, jobs, gc),
                "report diverged under gc={gc:?} jobs={jobs}"
            );
        }
    }
    assert!(!baseline.is_empty());
}

#[test]
fn reports_identical_across_engines_jobs_and_gc_modes() {
    // The full determinism matrix for the shared concurrent engine:
    // {private, shared} × jobs {1, 8} × every GC mode must render the same
    // bytes. This covers both parallelism layers — pair fan-out plus the
    // intra-pair two-side enumeration and diff-row fans the shared engine
    // enables — and the stop-the-world collector's index-stable sweeps.
    let pairs = scenario2(4, 17);
    let baseline = render_all_engine(&pairs, false, 1, GcMode::Off);
    for shared in [false, true] {
        for jobs in [1, 8] {
            for gc in [GcMode::Off, GcMode::Auto, GcMode::Aggressive] {
                assert_eq!(
                    baseline,
                    render_all_engine(&pairs, shared, jobs, gc),
                    "report diverged under shared={shared} jobs={jobs} gc={gc:?}"
                );
            }
        }
    }
    assert!(!baseline.is_empty());
}

#[test]
fn shared_engine_handles_single_pair_intra_parallelism() {
    // One ACL work item only (structural checks off): all parallelism is
    // intra-pair — the two-side enumeration and diff-row fans on forked
    // workers — the shape the multi-pair matrix above cannot reach because
    // its items outnumber its workers.
    let (c, j) = campion::gen::capirca_acl_pair(300, 10, 7);
    let (rc, rj) = (load(&c), load(&j));
    let run = |shared: bool, jobs: usize, gc: GcMode| {
        let opts = CampionOptions {
            jobs,
            gc,
            shared_manager: shared,
            check_static_routes: false,
            check_connected_routes: false,
            check_bgp_properties: false,
            check_ospf: false,
            ..CampionOptions::default()
        };
        compare_routers(&rc, &rj, &opts).to_string()
    };
    let baseline = run(false, 1, GcMode::Off);
    for gc in [GcMode::Off, GcMode::Auto, GcMode::Aggressive] {
        assert_eq!(
            baseline,
            run(true, 4, gc),
            "single-pair shared run diverged under gc={gc:?}"
        );
    }
    assert!(!baseline.is_empty());
}

#[test]
fn bdd_stats_aggregate_deterministically() {
    // Per-pair managers are private, so the merged counters are a pure
    // function of the workload — equal for any worker count.
    let pairs = scenario3(3, 50, 55);
    let (c, j) = (&pairs[0].cisco, &pairs[0].juniper);
    let seq = compare_routers(&load(c), &load(j), &opts_with_jobs(1));
    let par = compare_routers(&load(c), &load(j), &opts_with_jobs(8));
    // gc_pause_us is wall-clock time, not a counter — the only field that
    // legitimately varies between two runs of the same workload (visible
    // under CAMPION_GC_AGGRESSIVE, where the pauses are numerous enough
    // to time differently). Mask it; everything else must match exactly.
    let (mut seq_stats, mut par_stats) = (seq.bdd_stats, par.bdd_stats);
    seq_stats.gc_pause_us = 0;
    par_stats.gc_pause_us = 0;
    assert_eq!(seq_stats, par_stats);
    assert!(
        seq.bdd_stats.apply_lookups > 0,
        "semantic diff exercises the apply cache"
    );
}
