//! Observability must be free and invisible: enabling the trace collector
//! cannot change any rendered report, per-phase totals must account for
//! (almost all of) the end-to-end wall time, and the Chrome export must be
//! structurally valid with one track per driver worker.
//!
//! The collector is a process-global singleton, so every test here takes
//! `COLLECTOR` first — tests in this binary serialize, while other test
//! binaries run in their own processes and cannot interfere.

use std::sync::{Mutex, MutexGuard};

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions, CampionReport, GcMode};
use campion::gen::{capirca_acl_pair, scenario2};
use campion::ir::{lower, RouterIr};
use campion::trace;
use campion::trace::json::validate_chrome_trace;

static COLLECTOR: Mutex<()> = Mutex::new(());

/// Serialize on the global collector; a panic in another test must not
/// poison the rest of the suite.
fn collector() -> MutexGuard<'static, ()> {
    let g = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    // Clear any state a previous (possibly panicked) test left behind.
    trace::disable();
    let _ = trace::drain();
    g
}

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).expect("config parses")).expect("config lowers")
}

fn opts(jobs: usize, gc: GcMode) -> CampionOptions {
    CampionOptions {
        jobs,
        gc,
        ..CampionOptions::default()
    }
}

/// Concatenate `pairs` renamed copies of a generated ACL pair so one
/// `compare_routers` call carries `pairs` independent work items — enough
/// to keep several workers busy.
fn multi_acl_pair(pairs: usize, rules: usize, seed: u64) -> (RouterIr, RouterIr) {
    let mut cisco = String::new();
    let mut juniper = String::new();
    for i in 0..pairs {
        let (c, j) = capirca_acl_pair(rules, 5.min(rules / 2), seed + i as u64);
        cisco.push_str(&c.replace("ACL-GEN", &format!("ACL-GEN-{i}")));
        juniper.push_str(&j.replace("ACL-GEN", &format!("ACL-GEN-{i}")));
    }
    (load(&cisco), load(&juniper))
}

fn render_scenarios(
    pairs: &[campion::gen::ScenarioPair],
    jobs: usize,
    gc: GcMode,
    shared: bool,
    traced: bool,
) -> String {
    if traced {
        trace::enable();
    }
    let o = CampionOptions {
        shared_manager: shared,
        ..opts(jobs, gc)
    };
    let mut out = String::new();
    for p in pairs {
        let report = compare_routers(&load(&p.cisco), &load(&p.juniper), &o);
        out.push_str(&format!("### {}\n{report}\n", p.name));
    }
    if traced {
        trace::disable();
        let t = trace::drain();
        assert!(!t.is_empty(), "traced run must record spans");
    }
    out
}

#[test]
fn reports_byte_identical_with_tracing_on_or_off() {
    let _g = collector();
    // The full matrix the issue asks for: tracing {off,on} × jobs {1,4} ×
    // gc {Off,Auto,Aggressive} × manager {private,shared} — every cell
    // renders the same bytes.
    let pairs = scenario2(4, 17);
    let baseline = render_scenarios(&pairs, 1, GcMode::Off, false, false);
    assert!(!baseline.is_empty());
    for traced in [false, true] {
        for jobs in [1, 4] {
            for gc in [GcMode::Off, GcMode::Auto, GcMode::Aggressive] {
                for shared in [false, true] {
                    assert_eq!(
                        baseline,
                        render_scenarios(&pairs, jobs, gc, shared, traced),
                        "report diverged under traced={traced} jobs={jobs} \
                         gc={gc:?} shared={shared}"
                    );
                }
            }
        }
    }
}

#[test]
fn shared_manager_tracing_keeps_tracks_and_utilization_sane() {
    let _g = collector();
    let (r1, r2) = multi_acl_pair(6, 50, 0xC0DE);
    let o = CampionOptions {
        shared_manager: true,
        ..opts(4, GcMode::Auto)
    };
    let untraced = compare_routers(&r1, &r2, &o).to_string();
    trace::enable();
    let report = compare_routers(&r1, &r2, &o);
    trace::disable();
    let t = trace::drain();
    assert_eq!(report.to_string(), untraced, "tracing perturbed the report");
    validate_chrome_trace(&t.chrome_json()).expect("chrome trace validates");
    // Per-worker utilization derived from `pool.worker` spans: busy time
    // cannot exceed the worker's wall time, every worker lives on a driver
    // worker track, and anything claimed was actually worked on.
    for w in t.worker_stats() {
        assert!(
            w.busy_ns <= w.wall_ns,
            "{}: busy {} > wall {}",
            w.label,
            w.busy_ns,
            w.wall_ns
        );
        assert!(w.utilization() <= 1.0);
        assert!((1..trace::SUB_TRACK_BASE).contains(&w.track), "{}", w.track);
        if w.claimed > 0 {
            assert!(w.busy_ns > 0, "{}: claimed items but no busy time", w.label);
        }
    }
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if hw > 1 {
        assert!(
            !t.worker_stats().is_empty(),
            "multi-worker run must produce pool.worker utilization"
        );
    }
}

#[test]
fn top_level_spans_cover_the_wall_clock() {
    let _g = collector();
    let (r1, r2) = multi_acl_pair(2, 120, 0xACE);
    trace::enable();
    let report = compare_routers(&r1, &r2, &opts(1, GcMode::default()));
    trace::disable();
    let t = trace::drain();
    assert!(
        !report.acl_diffs.is_empty(),
        "workload produces differences"
    );
    let wall = t.wall_ns();
    let covered = t.top_level_coverage_ns();
    assert!(wall > 0);
    // Acceptance bar: the per-phase account explains the end-to-end wall
    // to within 10% — no large untimed gaps.
    assert!(
        covered as f64 >= wall as f64 * 0.9,
        "top-level spans cover {covered} of {wall} ns (<90%)"
    );
}

#[test]
fn chrome_export_is_valid_with_one_track_per_worker() {
    let _g = collector();
    let (r1, r2) = multi_acl_pair(8, 60, 0xD1CE);
    trace::enable();
    let report = compare_routers(&r1, &r2, &opts(4, GcMode::Aggressive));
    trace::disable();
    let t = trace::drain();
    let json = t.chrome_json();
    let check = validate_chrome_trace(&json).expect("chrome trace validates");
    assert!(check.events > 0);
    assert!(check.spans > 0, "B/E events pair into spans");
    // The driver clamps workers to the hardware thread count and runs
    // inline (no spawned threads, main's track only) when that leaves a
    // single worker; otherwise every worker is its own track next to
    // main's coordinating track.
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = 4.min(hw);
    let expected_tracks = if workers <= 1 { 1 } else { 1 + workers };
    assert_eq!(
        check.tracks, expected_tracks,
        "one metadata-named track per worker plus main:\n{check}"
    );
    for name in ["item.acl_pair", "semdiff.acl_paths", "bdd.gc"] {
        assert!(json.contains(name), "trace missing phase {name}");
    }
    assert!(!report.acl_diffs.is_empty());
}

#[test]
fn phase_stats_explain_item_spans() {
    let _g = collector();
    let (r1, r2) = multi_acl_pair(3, 40, 0xFEED);
    trace::enable();
    let _ = compare_routers(&r1, &r2, &opts(1, GcMode::default()));
    trace::disable();
    let t = trace::drain();
    let stats = t.phase_stats();
    let item = stats
        .iter()
        .find(|s| s.name == "item.acl_pair")
        .expect("acl work items traced");
    assert_eq!(item.count, 3, "one span per ACL pair");
    assert!(item.p50_ns <= item.max_ns);
    assert!(item.total_ns >= item.max_ns);
    // Counter deltas ride on the work-item spans: the BDD allocation the
    // report's merged stats saw must equal the sum over item spans.
    let span_nodes: i64 = t
        .spans()
        .iter()
        .filter(|s| s.name == "item.acl_pair")
        .filter_map(|s| {
            s.counters
                .iter()
                .find(|(n, _)| *n == "bdd_nodes")
                .map(|(_, v)| *v)
        })
        .sum();
    assert!(span_nodes > 0, "item spans carry bdd_nodes counters");
}

#[test]
fn disabled_collector_stays_empty_through_a_compare() {
    let _g = collector();
    let (r1, r2) = multi_acl_pair(1, 30, 0xB0B);
    let report: CampionReport = compare_routers(&r1, &r2, &opts(2, GcMode::Aggressive));
    let t = trace::drain();
    assert!(
        t.is_empty(),
        "spans recorded while disabled: {} events",
        t.events.len()
    );
    assert!(report.total_differences() > 0);
}
