//! CLI integration tests: run the compiled `campion` binary against the
//! checked-in testdata, covering exit codes and the translate pipeline.

use std::process::Command;

fn campion(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_campion"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn compare_differs_exits_one() {
    let out = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 difference(s)"), "{stdout}");
    assert!(stdout.contains("Included Prefixes"));
}

#[test]
fn compare_equal_exits_zero() {
    let out = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_cisco.cfg",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("No behavioral differences"));
}

#[test]
fn compare_missing_file_exits_two() {
    let out = campion(&["compare", "testdata/figure1_cisco.cfg", "/nonexistent.cfg"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn flags_disable_checks() {
    let out = campion(&[
        "compare",
        "--no-route-maps",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(0), "only route maps differ here");
    let out = campion(&["compare", "--bogus", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn exhaustive_communities_flag() {
    let out = campion(&[
        "compare",
        "--exhaustive-communities",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("with 10:10; without 10:11"),
        "exhaustive community conditions must replace the single example:\n{stdout}"
    );
}

#[test]
fn format_json_emits_stable_structured_report() {
    let out = campion(&[
        "compare",
        "--format",
        "json",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1), "exit code still signals diffs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let doc = campion::trace::json::parse(&stdout).expect("valid JSON");
    use campion::trace::json::Json;
    assert_eq!(
        doc.get("router1").and_then(Json::as_str),
        Some("cisco_router")
    );
    assert_eq!(doc.get("equivalent").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("total_differences").and_then(Json::as_f64),
        Some(2.0)
    );
    // The CLI uses the same serializer as the fleet daemon's API: the
    // bytes must equal an in-process render of the same comparison.
    let load = |p: &str| {
        campion::ir::lower(
            &campion::cfg::parse_config(&std::fs::read_to_string(p).expect("read")).expect("parse"),
        )
        .expect("lower")
    };
    let report = campion::core::compare_routers(
        &load("testdata/figure1_cisco.cfg"),
        &load("testdata/figure1_juniper.cfg"),
        &campion::core::CampionOptions::default(),
    );
    assert_eq!(stdout, campion::core::report_json(&report));
    // An unknown format is a usage error.
    let out = campion(&["compare", "--format", "yaml", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn translate_then_compare_is_clean() {
    let out = campion(&["translate", "testdata/figure1_cisco.cfg"]);
    assert_eq!(out.status.code(), Some(0));
    let junos = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(junos.contains("policy-statement POL"));
    let tmp = std::env::temp_dir().join("campion_cli_translated.cfg");
    std::fs::write(&tmp, &junos).expect("write temp");
    let out = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        tmp.to_str().expect("utf8 path"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "automated translation must be equivalent:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn baseline_reports_single_counterexamples() {
    let out = campion(&[
        "baseline",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("policy POL"));
    assert!(stdout.contains("Route received"));

    let out = campion(&[
        "baseline",
        "testdata/static_cisco.cfg",
        "testdata/static_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("static routes"));
}

#[test]
fn usage_without_args() {
    let out = campion(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn stats_flag_renders_gc_counters() {
    let args = [
        "compare",
        "--stats",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ];
    let out = campion(&args);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=== BDD engine statistics ==="), "{stdout}");
    for label in [
        "live nodes",
        "peak live nodes",
        "post-GC live nodes",
        "GC collections",
        "GC nodes freed",
        "cache resizes",
        "apply hit rate",
    ] {
        assert!(stdout.contains(label), "missing `{label}` in:\n{stdout}");
    }
    // Without the flag, no statistics block — and the report proper is
    // byte-identical: --stats only appends.
    let out_plain = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    let plain = String::from_utf8_lossy(&out_plain.stdout).into_owned();
    assert!(!plain.contains("BDD engine statistics"));
    assert!(
        stdout.starts_with(&plain),
        "--stats altered the report body"
    );
}

#[test]
fn stats_json_flag_emits_machine_readable_counters() {
    let args = [
        "compare",
        "--stats-json",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ];
    let out = campion(&args);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    // The JSON block follows the report body; it is the machine twin of
    // `--stats` and uses the same field names as the bench baseline.
    let idx = stdout
        .find("{\n  \"bdd_nodes\"")
        .expect("stats JSON present");
    use campion::trace::json::Json;
    let doc = campion::trace::json::parse(&stdout[idx..]).expect("valid JSON");
    let num = |k: &str| doc.get(k).and_then(Json::as_f64).expect("numeric field");
    assert!(num("bdd_nodes") > 0.0);
    assert!(num("unique_lookups") > 0.0);
    assert!((0.0..=1.0).contains(&num("unique_hit_rate")));
    assert!(num("gc_pause_max_us") <= num("gc_pause_us"));
    // The report proper is untouched: --stats-json only appends.
    let plain = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert!(stdout.starts_with(&String::from_utf8_lossy(&plain.stdout).into_owned()));
}

#[test]
fn log_flag_writes_json_lines_and_leaves_the_report_alone() {
    let plain = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    let tmp = std::env::temp_dir().join("campion_cli_log.jsonl");
    let _ = std::fs::remove_file(&tmp);
    let out = campion(&[
        "compare",
        "--log",
        tmp.to_str().expect("utf8 path"),
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        out.stdout, plain.stdout,
        "--log must not perturb the report"
    );
    let log = std::fs::read_to_string(&tmp).expect("log file written");
    for line in log.lines() {
        campion::trace::json::parse(line).expect("every log line is a JSON object");
    }
    assert!(log.contains("\"event\":\"compare.start\""), "{log}");
    assert!(log.contains("\"event\":\"compare.done\""), "{log}");
    assert!(log.contains("\"differences\":2"), "{log}");
    // `--log -` routes the same lines to stderr instead.
    let out = campion(&[
        "compare",
        "--log",
        "-",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"event\":\"compare.done\""), "{stderr}");
    // A missing destination is a usage error.
    let out = campion(&["compare", "--log"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn gc_flag_modes_accepted_and_equal() {
    let mut reports = Vec::new();
    for mode in ["off", "auto", "aggressive"] {
        let out = campion(&[
            "compare",
            "--gc",
            mode,
            "testdata/figure1_cisco.cfg",
            "testdata/figure1_juniper.cfg",
        ]);
        assert_eq!(out.status.code(), Some(1), "gc mode {mode}");
        reports.push(out.stdout);
    }
    assert_eq!(reports[0], reports[1], "off vs auto reports differ");
    assert_eq!(reports[1], reports[2], "auto vs aggressive reports differ");
    let out = campion(&["compare", "--gc", "sometimes", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn metrics_flag_reports_on_stderr_and_leaves_stdout_alone() {
    let plain = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    let out = campion(&[
        "compare",
        "--metrics",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        out.stdout, plain.stdout,
        "--metrics must not perturb the report"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("=== campion per-phase metrics ==="),
        "{stderr}"
    );
    for phase in ["core.compare", "item.policy_pair", "cfg.parse", "ir.lower"] {
        assert!(stderr.contains(phase), "missing phase `{phase}`:\n{stderr}");
    }
    assert!(stderr.contains("top-level span coverage"), "{stderr}");
}

#[test]
fn trace_flag_writes_valid_chrome_json() {
    let plain = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    let tmp = std::env::temp_dir().join("campion_cli_trace.json");
    let out = campion(&[
        "compare",
        "--trace",
        tmp.to_str().expect("utf8 path"),
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(
        out.stdout, plain.stdout,
        "--trace must not perturb the report"
    );
    let json = std::fs::read_to_string(&tmp).expect("trace file written");
    let check = campion::trace::json::validate_chrome_trace(&json)
        .expect("chrome trace-event JSON validates");
    assert!(check.spans > 0, "trace records spans: {check}");
    // A missing output path is a usage error, not a silent no-op.
    let out = campion(&["compare", "--trace"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn aggressive_gc_env_override_is_byte_identical() {
    // CAMPION_GC_AGGRESSIVE=1 forces a collection at every safe point no
    // matter what the options say — the differential hook CI uses. The
    // subprocess isolates the env var from other tests.
    let args = [
        "compare",
        "--gc",
        "off",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ];
    let plain = campion(&args);
    let forced = Command::new(env!("CARGO_BIN_EXE_campion"))
        .args(args)
        .env("CAMPION_GC_AGGRESSIVE", "1")
        .output()
        .expect("binary runs");
    assert_eq!(plain.status.code(), forced.status.code());
    assert_eq!(
        plain.stdout, forced.stdout,
        "env-forced aggressive GC changed the report"
    );
}
