//! CLI integration tests: run the compiled `campion` binary against the
//! checked-in testdata, covering exit codes and the translate pipeline.

use std::process::Command;

fn campion(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_campion"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn compare_differs_exits_one() {
    let out = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 difference(s)"), "{stdout}");
    assert!(stdout.contains("Included Prefixes"));
}

#[test]
fn compare_equal_exits_zero() {
    let out = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_cisco.cfg",
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("No behavioral differences"));
}

#[test]
fn compare_missing_file_exits_two() {
    let out = campion(&["compare", "testdata/figure1_cisco.cfg", "/nonexistent.cfg"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn flags_disable_checks() {
    let out = campion(&[
        "compare",
        "--no-route-maps",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(0), "only route maps differ here");
    let out = campion(&["compare", "--bogus", "a", "b"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn exhaustive_communities_flag() {
    let out = campion(&[
        "compare",
        "--exhaustive-communities",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("with 10:10; without 10:11"),
        "exhaustive community conditions must replace the single example:\n{stdout}"
    );
}

#[test]
fn translate_then_compare_is_clean() {
    let out = campion(&["translate", "testdata/figure1_cisco.cfg"]);
    assert_eq!(out.status.code(), Some(0));
    let junos = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(junos.contains("policy-statement POL"));
    let tmp = std::env::temp_dir().join("campion_cli_translated.cfg");
    std::fs::write(&tmp, &junos).expect("write temp");
    let out = campion(&[
        "compare",
        "testdata/figure1_cisco.cfg",
        tmp.to_str().expect("utf8 path"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "automated translation must be equivalent:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn baseline_reports_single_counterexamples() {
    let out = campion(&[
        "baseline",
        "testdata/figure1_cisco.cfg",
        "testdata/figure1_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("policy POL"));
    assert!(stdout.contains("Route received"));

    let out = campion(&[
        "baseline",
        "testdata/static_cisco.cfg",
        "testdata/static_juniper.cfg",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("static routes"));
}

#[test]
fn usage_without_args() {
    let out = campion(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
