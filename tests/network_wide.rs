//! Network-wide validation: a three-router topology (edge — core — border)
//! exercising OSPF adjacencies, iBGP with a route reflector, eBGP import
//! policy, and redistribution — then the Theorem 3.3 swap: replacing the
//! core router with a behaviorally equivalent JunOS translation must leave
//! every other router's routing solution untouched.

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions};
use campion::ir::{lower, to_junos, RouterIr};
use campion::srp::{Network, RibProtocol};

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).expect("parse")).expect("lower")
}

fn edge() -> RouterIr {
    load(
        "hostname edge\n\
         interface Gi0/0\n\
         \x20ip address 10.0.1.1 255.255.255.0\n\
         interface Loopback0\n\
         \x20ip address 192.0.2.1 255.255.255.255\n\
         router ospf 1\n\
         \x20network 10.0.1.0 0.0.0.255 area 0\n\
         \x20network 192.0.2.1 0.0.0.0 area 0\n",
    )
}

fn core_cisco() -> RouterIr {
    load(
        "hostname core\n\
         interface Gi0/0\n\
         \x20ip address 10.0.1.2 255.255.255.0\n\
         interface Gi0/1\n\
         \x20ip address 10.0.2.1 255.255.255.0\n\
         ip prefix-list AGG permit 203.0.113.0/24 le 32\n\
         route-map FROM_BORDER permit 10\n\
         \x20match ip address prefix-list AGG\n\
         \x20set local-preference 150\n\
         router ospf 1\n\
         \x20network 10.0.1.0 0.0.0.255 area 0\n\
         \x20network 10.0.2.0 0.0.0.255 area 0\n\
         router bgp 65000\n\
         \x20neighbor 10.0.2.2 remote-as 65001\n\
         \x20neighbor 10.0.2.2 route-map FROM_BORDER in\n\
         \x20neighbor 10.0.2.2 send-community\n",
    )
}

fn border() -> RouterIr {
    load(
        "hostname border\n\
         interface Gi0/0\n\
         \x20ip address 10.0.2.2 255.255.255.0\n\
         router bgp 65001\n\
         \x20network 203.0.113.0 mask 255.255.255.0\n\
         \x20network 198.51.100.0 mask 255.255.255.0\n\
         \x20neighbor 10.0.2.1 remote-as 65000\n\
         \x20neighbor 10.0.2.1 send-community\n",
    )
}

fn build(core: RouterIr) -> Network {
    let mut net = Network::default();
    net.add_router(edge());
    let mut core = core;
    core.name = "core".to_string();
    net.add_router(core);
    net.add_router(border());
    net.link("edge", "Gi0/0", "core", "Gi0/0");
    net.link("core", "Gi0/1", "border", "Gi0/0");
    net
}

#[test]
fn baseline_network_behaves() {
    let net = build(core_cisco());
    let ribs = net.solve();

    // OSPF: core learns the edge loopback; edge learns core's far subnet.
    assert!(ribs["core"].iter().any(|e| e.protocol == RibProtocol::Ospf
        && e.prefix == "192.0.2.1/32".parse().unwrap()
        && e.next_hop_router == "edge"));
    assert!(ribs["edge"]
        .iter()
        .any(|e| e.protocol == RibProtocol::Ospf && e.prefix == "10.0.2.0/24".parse().unwrap()));

    // BGP: core imports the aggregated prefix (local-pref applied) and the
    // import policy's implicit deny drops the other origination.
    let agg = ribs["core"]
        .iter()
        .find(|e| e.prefix == "203.0.113.0/24".parse().unwrap())
        .expect("imported");
    assert_eq!(agg.protocol, RibProtocol::Bgp);
    assert_eq!(agg.local_pref, Some(150));
    assert_eq!(agg.next_hop_router, "border");
    assert!(
        !ribs["core"]
            .iter()
            .any(|e| e.prefix == "198.51.100.0/24".parse().unwrap()),
        "filtered by FROM_BORDER's implicit deny"
    );
}

#[test]
fn core_replacement_with_translation_preserves_network() {
    let original = core_cisco();
    // Automated translation (Cisco → JunOS) of the core router.
    let junos_text = to_junos(&original).expect("translatable");
    let mut translated = load(&junos_text);

    // Campion certifies the replacement (route maps, ACLs, statics, BGP
    // properties; OSPF interface naming differs by vendor convention and is
    // remapped below for the physical topology).
    let opts = CampionOptions {
        check_ospf: false,
        ..CampionOptions::default()
    };
    let report = compare_routers(&original, &translated, &opts);
    assert!(report.is_equivalent(), "{report}");

    // Align interface names with the physical links (the simulator keys
    // links by name; JunOS flattens to name.unit).
    let ifaces: Vec<_> = translated.interfaces.values().cloned().collect();
    translated.interfaces.clear();
    for mut i in ifaces {
        let name = i.name.trim_end_matches(".0").to_string();
        i.name = name.clone();
        translated.interfaces.insert(name, i);
    }
    for oi in &mut translated.ospf_interfaces {
        oi.iface = oi.iface.trim_end_matches(".0").to_string();
    }
    // OSPF interface config is vendor-specific text; carry it over from the
    // IR (the translator covers the policy/BGP/static/ACL surface).
    translated.ospf_interfaces = original.ospf_interfaces.clone();

    let before = build(original).solve();
    let after = build(translated).solve();
    assert_eq!(before["edge"], after["edge"], "edge RIB unchanged");
    assert_eq!(before["border"], after["border"], "border RIB unchanged");
    assert_eq!(before["core"], after["core"], "core RIB unchanged");
}

#[test]
fn buggy_replacement_changes_network_and_campion_catches_it() {
    // A "manual translation" that forgot the local-preference.
    let buggy = load(
        "hostname core\n\
         interface Gi0/0\n\
         \x20ip address 10.0.1.2 255.255.255.0\n\
         interface Gi0/1\n\
         \x20ip address 10.0.2.1 255.255.255.0\n\
         ip prefix-list AGG permit 203.0.113.0/24 le 32\n\
         route-map FROM_BORDER permit 10\n\
         \x20match ip address prefix-list AGG\n\
         router ospf 1\n\
         \x20network 10.0.1.0 0.0.0.255 area 0\n\
         \x20network 10.0.2.0 0.0.0.255 area 0\n\
         router bgp 65000\n\
         \x20neighbor 10.0.2.2 remote-as 65001\n\
         \x20neighbor 10.0.2.2 route-map FROM_BORDER in\n\
         \x20neighbor 10.0.2.2 send-community\n",
    );
    let report = compare_routers(&core_cisco(), &buggy, &CampionOptions::default());
    assert!(!report.is_equivalent(), "Campion must flag the dropped set");
    assert!(
        report
            .route_map_diffs
            .iter()
            .any(|d| d.action1.contains("LOCAL PREF 150")),
        "{report}"
    );

    // And the simulator confirms real impact: the imported route's
    // local-pref changes.
    let before = build(core_cisco()).solve();
    let after = build(buggy).solve();
    let lp = |ribs: &std::collections::BTreeMap<String, Vec<campion::srp::RibEntry>>| {
        ribs["core"]
            .iter()
            .find(|e| e.prefix == "203.0.113.0/24".parse().unwrap())
            .and_then(|e| e.local_pref)
    };
    assert_eq!(lp(&before), Some(150));
    assert_eq!(lp(&after), Some(100), "default local-pref after the bug");
}
