//! Golden-output tests: the rendered reports are part of the paper's
//! contribution (Present, §3), so their exact shape is pinned against
//! checked-in snapshots. Regenerate with
//! `cargo run -p campion-bench --bin table2 > testdata/golden/table2.txt`
//! when the format intentionally changes.

use campion::cfg::parse_config;
use campion::cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
use campion::core::{compare_routers, CampionOptions};
use campion::ir::lower;

#[test]
fn table2_rendering_matches_golden_snapshot() {
    let golden = std::fs::read_to_string("testdata/golden/table2.txt").expect("golden file");
    let c = lower(&parse_config(FIGURE1_CISCO).expect("parse")).expect("lower");
    let j = lower(&parse_config(FIGURE1_JUNIPER).expect("parse")).expect("lower");
    let report = compare_routers(&c, &j, &CampionOptions::default());
    for (i, d) in report.route_map_diffs.iter().enumerate() {
        let rendered = format!("{d}");
        for line in rendered.lines() {
            assert!(
                golden.contains(line),
                "difference {} line not in golden snapshot:\n{line}\n\
                 (regenerate testdata/golden/table2.txt if the format change \
                 is intentional)",
                i + 1
            );
        }
    }
}

#[test]
fn testdata_files_parse_to_the_samples() {
    // The checked-in CLI fixtures stay in sync with the library samples.
    let file = std::fs::read_to_string("testdata/figure1_cisco.cfg").expect("fixture");
    assert_eq!(file.trim_end(), FIGURE1_CISCO.trim_end());
    let file = std::fs::read_to_string("testdata/figure1_juniper.cfg").expect("fixture");
    assert_eq!(file.trim_end(), FIGURE1_JUNIPER.trim_end());
}
