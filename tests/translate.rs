//! Translation round-trips: lower a Cisco configuration, emit JunOS, parse
//! and lower the emission, and let Campion verify behavioral equivalence —
//! automating (and then checking) the paper's riskiest workflow, manual
//! router replacement (§5.1 Scenario 2).

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions};
use campion::ir::{lower, to_junos, RouterIr};

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).expect("parse")).expect("lower")
}

fn round_trip(cisco_text: &str) -> (RouterIr, RouterIr) {
    let original = load(cisco_text);
    let junos_text = to_junos(&original)
        .unwrap_or_else(|e| panic!("translation failed: {e}\nsource:\n{cisco_text}"));
    let translated = lower(
        &parse_config(&junos_text)
            .unwrap_or_else(|e| panic!("emitted JunOS does not parse: {e}\n{junos_text}")),
    )
    .unwrap_or_else(|e| panic!("emitted JunOS does not lower: {e}\n{junos_text}"));
    (original, translated)
}

fn assert_equivalent(cisco_text: &str) {
    let (original, translated) = round_trip(cisco_text);
    let report = compare_routers(&original, &translated, &CampionOptions::default());
    assert!(
        report.is_equivalent(),
        "translation changed behavior:\n{report}"
    );
}

#[test]
fn route_map_with_prefix_and_community_matches() {
    assert_equivalent(
        "hostname r1\n\
         ip prefix-list NETS permit 10.9.0.0/16 le 32\n\
         ip prefix-list NETS permit 10.100.0.0/16 le 32\n\
         ip community-list standard COMM permit 10:10\n\
         ip community-list standard COMM permit 10:11\n\
         route-map POL deny 10\n\
         \x20match ip address prefix-list NETS\n\
         route-map POL deny 20\n\
         \x20match community COMM\n\
         route-map POL permit 30\n\
         \x20set local-preference 30\n",
    );
}

#[test]
fn route_map_with_sets_and_exact_ranges() {
    assert_equivalent(
        "hostname r2\n\
         ip prefix-list P permit 172.16.0.0/12\n\
         ip prefix-list P permit 192.168.0.0/16 ge 24 le 28\n\
         route-map OUT permit 10\n\
         \x20match ip address prefix-list P\n\
         \x20set metric 120\n\
         \x20set community 65000:1 65000:2 additive\n\
         route-map OUT permit 20\n\
         \x20set community 65000:99\n\
         \x20set tag 7\n",
    );
}

#[test]
fn statics_and_interfaces() {
    assert_equivalent(
        "hostname r3\n\
         interface Gi0/0\n\
         \x20ip address 10.0.12.1 255.255.255.0\n\
         ip route 10.50.0.0 255.255.0.0 10.2.2.3 200 tag 5\n\
         ip route 192.0.2.0 255.255.255.0 Null0\n",
    );
}

#[test]
fn acl_translation() {
    assert_equivalent(
        "hostname r4\n\
         ip access-list extended EDGE\n\
         \x20permit tcp 10.0.0.0 0.0.255.255 any eq 443\n\
         \x20deny udp any 192.0.2.0 0.0.0.255 range 100 200\n\
         \x20permit ip any any\n",
    );
}

#[test]
fn bgp_neighbors_with_policies() {
    assert_equivalent(
        "hostname r5\n\
         ip prefix-list IMP permit 203.0.113.0/24 le 32\n\
         route-map IN permit 10\n\
         \x20match ip address prefix-list IMP\n\
         \x20set local-preference 150\n\
         router bgp 65001\n\
         \x20neighbor 10.0.0.2 remote-as 65002\n\
         \x20neighbor 10.0.0.2 route-map IN in\n\
         \x20neighbor 10.0.0.2 send-community\n\
         \x20neighbor 10.0.0.3 remote-as 65001\n\
         \x20neighbor 10.0.0.3 route-reflector-client\n\
         \x20neighbor 10.0.0.3 send-community\n",
    );
}

#[test]
fn expanded_community_regexes() {
    assert_equivalent(
        "hostname r6\n\
         ip community-list expanded RX permit _65200:1[0-9]_\n\
         route-map F deny 10\n\
         \x20match community RX\n\
         route-map F permit 20\n",
    );
}

#[test]
fn untranslatable_constructs_are_reported_not_dropped() {
    // send-community absent: JunOS cannot suppress community propagation.
    let r = load(
        "router bgp 65001\n\
         \x20neighbor 10.0.0.2 remote-as 65002\n",
    );
    let err = to_junos(&r).expect_err("must refuse");
    assert!(err.message.contains("send"), "{err}");

    // Non-contiguous wildcard in an ACL.
    let r = load(
        "ip access-list extended X\n\
         \x20deny ip 10.0.0.0 0.0.2.255 any\n\
         \x20permit ip any any\n",
    );
    let err = to_junos(&r).expect_err("must refuse");
    assert!(err.message.contains("wildcard"), "{err}");

    // set weight is Cisco-local.
    let r = load(
        "route-map W permit 10\n\
         \x20set weight 100\n",
    );
    let err = to_junos(&r).expect_err("must refuse");
    assert!(err.message.contains("weight"), "{err}");
}

/// The whole point: a *buggy* manual translation is caught, while the
/// automated translation of the same source is clean.
#[test]
fn automated_translation_beats_the_buggy_manual_one() {
    use campion::cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
    let original = load(FIGURE1_CISCO);
    // The paper's manual translation (Figure 1b) has two bugs.
    let manual = load(FIGURE1_JUNIPER);
    let manual_report = compare_routers(&original, &manual, &CampionOptions::default());
    assert_eq!(manual_report.route_map_diffs.len(), 2);
    // The automated translation has none.
    let (_, automated) = round_trip(FIGURE1_CISCO);
    let auto_report = compare_routers(&original, &automated, &CampionOptions::default());
    assert!(auto_report.is_equivalent(), "{auto_report}");
}
