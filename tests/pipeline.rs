//! End-to-end integration tests: raw configuration text → parse → lower →
//! diff → present, across crates.

use campion::cfg::parse_config;
use campion::cfg::samples::{FIGURE1_CISCO, FIGURE1_JUNIPER};
use campion::core::{compare_routers, CampionOptions};
use campion::ir::lower;

fn load(text: &str) -> campion::ir::RouterIr {
    lower(&parse_config(text).expect("parse")).expect("lower")
}

#[test]
fn figure1_full_pipeline_from_text() {
    let report = compare_routers(
        &load(FIGURE1_CISCO),
        &load(FIGURE1_JUNIPER),
        &CampionOptions::default(),
    );
    assert_eq!(report.route_map_diffs.len(), 2);
    let rendered = report.to_string();
    // Every row of the paper's Table 2 appears in the rendering.
    for needle in [
        "10.9.0.0/16 : 16-32",
        "10.100.0.0/16 : 16-32",
        "10.9.0.0/16 : 16-16",
        "0.0.0.0/0 : 0-32",
        // The full disagreeing community set (commloc), not one example.
        "Community: 10:10, 10:11",
        "REJECT",
        "SET LOCAL PREF 30",
        "route-map POL deny 10",
        "match community COMM",
        "term rule3",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }
}

#[test]
fn self_comparison_is_always_clean() {
    for text in [FIGURE1_CISCO, FIGURE1_JUNIPER] {
        let a = load(text);
        let b = load(text);
        let report = compare_routers(&a, &b, &CampionOptions::default());
        assert!(report.is_equivalent(), "{report}");
    }
}

/// A faithful cross-vendor translation pair must be reported equivalent —
/// the workflow that gates a router replacement.
#[test]
fn faithful_translation_is_equivalent() {
    let cisco = "\
hostname edge
ip prefix-list MARTIANS permit 10.0.0.0/8 le 32
ip prefix-list MARTIANS permit 192.168.0.0/16 le 32
ip community-list standard BLOCK permit 65000:666
route-map IN deny 10
 match ip address prefix-list MARTIANS
route-map IN deny 20
 match community BLOCK
route-map IN permit 30
 set local-preference 110
ip route 0.0.0.0 0.0.0.0 10.0.0.1 250
router bgp 64800
 neighbor 10.0.0.1 remote-as 64801
 neighbor 10.0.0.1 route-map IN in
 neighbor 10.0.0.1 send-community
";
    let juniper = "\
system { host-name edge; }
policy-options {
    prefix-list MARTIANS {
        10.0.0.0/8;
        192.168.0.0/16;
    }
    community BLOCK members 65000:666;
    policy-statement IN {
        term martians {
            from prefix-list-filter MARTIANS orlonger;
            then reject;
        }
        term block {
            from community BLOCK;
            then reject;
        }
        term rest {
            then {
                local-preference 110;
                accept;
            }
        }
    }
}
routing-options {
    autonomous-system 64800;
    static {
        route 0.0.0.0/0 {
            next-hop 10.0.0.1;
            preference 250;
        }
    }
}
protocols {
    bgp {
        group upstream {
            type external;
            peer-as 64801;
            neighbor 10.0.0.1 {
                import IN;
            }
        }
    }
}
";
    let report = compare_routers(&load(cisco), &load(juniper), &CampionOptions::default());
    assert!(
        report.is_equivalent(),
        "faithful translation flagged:\n{report}"
    );
}

/// Campion and the Minesweeper baseline must agree on *whether* two route
/// maps differ, and every baseline counterexample must be covered by some
/// Campion difference.
#[test]
fn minesweeper_and_campion_agree() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    let report = compare_routers(&c, &j, &CampionOptions::default());
    let cexs = campion::minesweeper::enumerate_route_map_cexs_general(
        &c.policies["POL"],
        &j.policies["POL"],
        100,
    );
    assert!(!report.route_map_diffs.is_empty());
    assert!(!cexs.is_empty());
    // Each counterexample's prefix falls inside the included-minus-excluded
    // ranges of at least one Campion difference.
    for cex in &cexs {
        let covered = report.route_map_diffs.iter().any(|d| {
            d.included.iter().any(|r| r.member(&cex.advert.prefix))
                && !d.excluded.iter().any(|r| r.member(&cex.advert.prefix))
                || d.included.iter().any(|r| r.member(&cex.advert.prefix)) && d.example.is_some()
        });
        assert!(
            covered,
            "cex {} not covered by any Campion difference",
            cex.advert
        );
    }
}

#[test]
fn options_gate_each_check_independently() {
    let c = load(FIGURE1_CISCO);
    let j = load(FIGURE1_JUNIPER);
    let all_off = CampionOptions {
        check_static_routes: false,
        check_connected_routes: false,
        check_bgp_properties: false,
        check_ospf: false,
        check_route_maps: false,
        check_acls: false,
        ..CampionOptions::default()
    };
    let report = compare_routers(&c, &j, &all_off);
    assert_eq!(report.total_differences(), 0);
}
