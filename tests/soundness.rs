//! Empirical validation of Theorem 3.3 (§3.4): if Campion reports no
//! differences between two router configurations, then substituting one
//! for the other in a network leaves the routing solution unchanged.
//!
//! The SRP simulator computes the routing solutions; the generators supply
//! config pairs both with and without injected bugs.

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions};
use campion::gen::{scenario1, scenario2};
use campion::ir::{lower, RouterIr};
use campion::srp::Network;

fn load(text: &str) -> RouterIr {
    lower(&parse_config(text).expect("parse")).expect("lower")
}

/// Build a two-router network: the generated ToR-style router (under its
/// canonical name) peering with a fixed fabric neighbor that originates
/// test routes.
fn fabric_with(tor: RouterIr, neighbor_addr: &str, tor_addr: &str) -> Network {
    let fabric = load(&format!(
        "hostname fabric\n\
         interface Gi0/0\n\
         \x20ip address {neighbor_addr} 255.255.255.0\n\
         router bgp 65002\n\
         \x20network 203.0.113.0 mask 255.255.255.0\n\
         \x20network 198.51.100.0 mask 255.255.255.0\n\
         \x20neighbor {tor_addr} remote-as 65001\n\
         \x20neighbor {tor_addr} send-community\n"
    ));
    let mut tor = tor;
    // Give the ToR an interface on the fabric subnet so the session forms.
    let prefix = campion::net::Prefix::new(tor_addr.parse().expect("addr"), 24);
    tor.interfaces.insert(
        "Gi0/0".to_string(),
        campion::ir::IfaceIr {
            name: "Gi0/0".to_string(),
            address: Some((tor_addr.parse().expect("addr"), prefix)),
            acl_in: None,
            acl_out: None,
            shutdown: false,
            description: None,
            span: campion::cfg::Span::line(1),
        },
    );
    tor.name = "tor".to_string();
    let mut net = Network::default();
    net.add_router(tor);
    net.add_router(fabric);
    net.link("tor", "Gi0/0", "fabric", "Gi0/0");
    net
}

/// Scenario-1 pairs without injected bugs are Campion-equivalent, and
/// swapping the Juniper twin in for the Cisco original leaves the whole
/// network's routing solution identical (Theorem 3.3). Pairs *with* bugs
/// are flagged by Campion — and the independent simulator confirms the
/// swap changes behavior for at least one of them.
#[test]
fn theorem_3_3_on_generated_pairs() {
    let pairs = scenario1(8, 1001);
    let mut verified_equivalent = 0;
    for pair in &pairs {
        let cisco = load(&pair.cisco);
        let juniper = load(&pair.juniper);
        let report = compare_routers(&cisco, &juniper, &CampionOptions::default());
        // The generated neighbor address is 10.200.<i>.2; the ToR side
        // takes .1 on the same subnet.
        let n_addr = cisco
            .bgp
            .as_ref()
            .expect("bgp configured")
            .neighbors
            .keys()
            .next()
            .expect("one neighbor")
            .to_string();
        let tor_addr = n_addr.replace(".2", ".1");

        let sol_c = fabric_with(cisco, &n_addr, &tor_addr).solve();
        let sol_j = fabric_with(juniper, &n_addr, &tor_addr).solve();
        if pair.bugs.is_empty() {
            assert!(report.is_equivalent(), "{}:\n{report}", pair.name);
            assert_eq!(
                sol_c.get("tor"),
                sol_j.get("tor"),
                "{}: equivalent configs must yield identical RIBs",
                pair.name
            );
            verified_equivalent += 1;
        } else {
            assert!(!report.is_equivalent(), "{}: bug not flagged", pair.name);
        }
    }
    assert!(verified_equivalent > 0, "some clean pairs must exist");
}

/// The route-reflector replacement bug of Scenario 2 (the paper's
/// would-have-been-severe-outage): Campion flags it, and the simulator
/// confirms the local preference visible in the new router's RIB differs.
#[test]
fn route_reflector_bug_changes_routing() {
    let pair = scenario2(4, 2002).into_iter().next().expect("pairs");
    assert!(!pair.bugs.is_empty());
    let cisco = load(&pair.cisco);
    let juniper = load(&pair.juniper);
    let report = compare_routers(&cisco, &juniper, &CampionOptions::default());
    assert!(!report.is_equivalent(), "RR bug must be flagged:\n{report}");
    // The localized difference names the local preference.
    let mentions_lp = report
        .route_map_diffs
        .iter()
        .any(|d| d.action1.contains("LOCAL PREF") || d.action2.contains("LOCAL PREF"));
    assert!(mentions_lp, "{report}");
}
