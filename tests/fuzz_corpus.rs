//! Golden end-to-end replay of every `testdata/fuzz-corpus/` entry.
//!
//! Golden entries (`kind = golden`) carry the exact `(seed, case, classes,
//! profile)` they were generated from. Replay regenerates each case through
//! `campion-fuzz`, asserts the committed config bytes come back identically
//! (the cross-machine reproducibility contract of `StdRng::for_stream`),
//! and re-runs all three oracles. Reproducer entries (`kind = reproducer`)
//! are diagnostic artifacts from past failures; they are replayed only as
//! a does-not-crash pipeline smoke check.

use std::path::{Path, PathBuf};

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions};
use campion::fuzz::{corpus, render_cisco, render_juniper, run_case};
use campion::ir::lower;

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/fuzz-corpus")
}

fn entries(kind: &str) -> Vec<(PathBuf, corpus::Meta)> {
    let mut out = Vec::new();
    for e in std::fs::read_dir(corpus_root()).expect("corpus directory exists") {
        let dir = e.expect("readable entry").path();
        if !dir.is_dir() {
            continue;
        }
        let meta = corpus::read_meta(&dir.join("case.meta")).expect("case.meta parses");
        if meta.get("kind").map(String::as_str) == Some(kind) {
            out.push((dir, meta));
        }
    }
    out.sort();
    out
}

#[test]
fn golden_corpus_covers_every_divergence_class() {
    let entries = entries("golden");
    assert!(
        entries.len() >= 5,
        "want at least 5 golden entries, found {}",
        entries.len()
    );
    let mut seeds = std::collections::BTreeSet::new();
    let mut classes = std::collections::BTreeSet::new();
    for (_, meta) in &entries {
        seeds.insert(meta.get("seed").cloned().unwrap_or_default());
        for i in 0.. {
            match meta.get(&format!("div{i}")) {
                Some(d) => classes.insert(d.split(':').next().unwrap_or("").to_string()),
                None => break,
            };
        }
    }
    assert!(seeds.len() >= 5, "want >= 5 distinct seeds, got {seeds:?}");
    for class in campion::fuzz::ALL_CLASSES {
        assert!(
            classes.contains(class.name()),
            "no golden entry injects {} (have {classes:?})",
            class.name()
        );
    }
}

#[test]
fn golden_entries_regenerate_and_pass_oracles() {
    for (dir, meta) in entries("golden") {
        let case = corpus::regenerate(&meta)
            .unwrap_or_else(|| panic!("{}: metadata incomplete", dir.display()));
        // Byte-identical regeneration: the committed pair is a pure
        // function of (seed, case, classes, profile) on any machine.
        let cisco = std::fs::read_to_string(dir.join("cisco.cfg")).unwrap();
        let juniper = std::fs::read_to_string(dir.join("juniper.cfg")).unwrap();
        assert_eq!(
            render_cisco(&case.base).text,
            cisco,
            "{}: cisco.cfg drifted from its seed",
            dir.display()
        );
        assert_eq!(
            render_juniper(&case.mutated()).text,
            juniper,
            "{}: juniper.cfg drifted from its seed",
            dir.display()
        );
        let out = run_case(&case);
        assert!(
            out.failures.is_empty(),
            "{}: replay fails oracles: {:?}",
            dir.display(),
            out.failures
        );
    }
}

#[test]
fn reproducer_entries_run_through_the_pipeline() {
    for (dir, _) in entries("reproducer") {
        let load = |name: &str| {
            let text = std::fs::read_to_string(dir.join(name)).unwrap();
            lower(&parse_config(&text).unwrap_or_else(|e| {
                panic!("{}/{name}: {e}", dir.display());
            }))
            .unwrap_or_else(|e| panic!("{}/{name}: {e}", dir.display()))
        };
        let r1 = load("cisco.cfg");
        let r2 = load("juniper.cfg");
        // Smoke only: the recorded oracle failure documents a bug, so the
        // verdict is not asserted — just that the pipeline handles the pair.
        let _ = compare_routers(&r1, &r2, &CampionOptions::default());
    }
}
