//! # Campion — debugging router configuration differences
//!
//! Umbrella crate re-exporting the full public API of this reproduction of
//! *Campion: Debugging Router Configuration Differences* (SIGCOMM 2021).
//!
//! Start with [`core`] (the diffing pipeline) and the repository examples:
//!
//! ```no_run
//! use campion::cfg::parse_config;
//! use campion::core::{compare_routers, CampionOptions};
//! use campion::ir::lower;
//!
//! let cisco = lower(&parse_config(&std::fs::read_to_string("cisco.cfg").unwrap()).unwrap()).unwrap();
//! let juniper = lower(&parse_config(&std::fs::read_to_string("juniper.cfg").unwrap()).unwrap()).unwrap();
//! let report = compare_routers(&cisco, &juniper, &CampionOptions::default());
//! println!("{report}");
//! ```

#![warn(missing_docs)]

pub use campion_bdd as bdd;
pub use campion_cfg as cfg;
pub use campion_core as core;
pub use campion_fleet as fleet;
pub use campion_fuzz as fuzz;
pub use campion_gen as gen;
pub use campion_ir as ir;
pub use campion_minesweeper as minesweeper;
pub use campion_net as net;
pub use campion_srp as srp;
pub use campion_symbolic as symbolic;
pub use campion_trace as trace;
