//! The `campion` command-line tool.
//!
//! ```text
//! campion compare <config1> <config2> [--no-acls] [--no-route-maps]
//!                 [--no-structural] [--exhaustive-communities] [--jobs N]
//!                 [--shared-manager] [--gc off|auto|aggressive]
//!                 [--stats] [--stats-json] [--metrics] [--trace <file>]
//!                 [--log <file|->] [--format text|json]
//! campion translate <config>            # emit the JunOS rewrite
//! campion baseline <config1> <config2>  # Minesweeper-style single cex
//! ```
//!
//! `compare` exits 0 when the two configurations are behaviorally
//! equivalent, 1 when differences were found, 2 on usage or parse errors —
//! so it drops straight into a change-management pipeline.
//!
//! Observability: `--stats` appends the aggregate BDD-engine counters to
//! stdout (`--stats-json` the machine-readable twin, bench-JSON field
//! names); `--metrics` prints the per-phase timing table (count / total /
//! p50 / p90 / p99 / max plus counter deltas and per-worker utilization)
//! on **stderr**; `--trace <file>` writes Chrome trace-event JSON loadable
//! in `chrome://tracing` / Perfetto, one track per worker; `--log <file|->`
//! emits structured JSON-lines logs (`-` = stderr). None of them perturb
//! the report: the rendered comparison is byte-identical with or without
//! them.

use std::process::ExitCode;

use campion::cfg::parse_config;
use campion::core::{compare_routers, CampionOptions, GcMode};
use campion::ir::{lower, to_junos, RouterIr};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  campion compare <config1> <config2> [--no-acls] [--no-route-maps]\n\
         \x20                 [--no-structural] [--exhaustive-communities] [--jobs N]\n\
         \x20                 [--shared-manager] [--gc off|auto|aggressive]\n\
         \x20                 [--stats] [--stats-json] [--metrics] [--trace <file>]\n\
         \x20                 [--log <file|->] [--format text|json]\n\
         \x20 campion translate <config>\n\
         \x20 campion baseline <config1> <config2>"
    );
    ExitCode::from(2)
}

fn load_file(path: &str) -> Result<RouterIr, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let cfg = parse_config(&text).map_err(|e| format!("{path}: {e}"))?;
    lower(&cfg).map_err(|e| format!("{path}: {e}"))
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut show_stats = false;
    let mut stats_json = false;
    let mut show_metrics = false;
    let mut json_format = false;
    let mut trace_path: Option<String> = None;
    let mut log_dest: Option<String> = None;
    let mut opts = CampionOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-acls" => opts.check_acls = false,
            "--no-route-maps" => opts.check_route_maps = false,
            "--no-structural" => {
                opts.check_static_routes = false;
                opts.check_connected_routes = false;
                opts.check_bgp_properties = false;
                opts.check_ospf = false;
            }
            "--exhaustive-communities" => opts.exhaustive_communities = true,
            "--shared-manager" => opts.shared_manager = true,
            "--stats" => show_stats = true,
            "--stats-json" => stats_json = true,
            "--metrics" => show_metrics = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => json_format = false,
                Some("json") => json_format = true,
                _ => {
                    eprintln!("--format requires one of: text, json");
                    return usage();
                }
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("--trace requires an output file path");
                    return usage();
                }
            },
            "--log" => match it.next() {
                Some(p) => log_dest = Some(p.clone()),
                None => {
                    eprintln!("--log requires an output file path (or - for stderr)");
                    return usage();
                }
            },
            "--gc" => match it.next().map(String::as_str) {
                Some("off") => opts.gc = GcMode::Off,
                Some("auto") => opts.gc = GcMode::Auto,
                Some("aggressive") => opts.gc = GcMode::Aggressive,
                _ => {
                    eprintln!("--gc requires one of: off, auto, aggressive");
                    return usage();
                }
            },
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => opts.jobs = n,
                _ => {
                    eprintln!("--jobs requires a numeric worker count");
                    return usage();
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
            path => paths.push(path.to_string()),
        }
    }
    let [p1, p2] = paths.as_slice() else {
        return usage();
    };
    // Tracing covers the whole pipeline — parse, lower, and compare — so
    // enable it before the first file loads. The report itself is rendered
    // identically either way; the sinks go to stderr / a side file.
    let tracing = show_metrics || trace_path.is_some();
    if tracing {
        campion::trace::enable();
    }
    if let Some(dest) = &log_dest {
        use campion::trace::log;
        if dest == "-" {
            log::init_stderr(log::Level::Info);
        } else if let Err(e) = log::init_file(log::Level::Info, std::path::Path::new(dest)) {
            eprintln!("error: {dest}: {e}");
            return ExitCode::from(2);
        }
        log::info(
            "compare.start",
            &[
                ("config1", log::Value::Str(p1)),
                ("config2", log::Value::Str(p2)),
            ],
        );
    }
    let (r1, r2) = match (load_file(p1), load_file(p2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let t0 = std::time::Instant::now();
    let report = compare_routers(&r1, &r2, &opts);
    if log_dest.is_some() {
        use campion::trace::log;
        log::info(
            "compare.done",
            &[
                (
                    "differences",
                    log::Value::U64(report.total_differences() as u64),
                ),
                ("equivalent", log::Value::Bool(report.is_equivalent())),
                ("dur_us", log::Value::U64(t0.elapsed().as_micros() as u64)),
                ("bdd_nodes", log::Value::U64(report.bdd_stats.nodes)),
            ],
        );
        log::shutdown();
    }
    if json_format {
        // The same serializer the fleet daemon's store and API use, so a
        // cached fleet report and a fresh CLI run emit identical documents.
        print!("{}", campion::core::report_json(&report));
    } else {
        println!("{report}");
    }
    if show_stats {
        println!("{}", report.render_stats());
    }
    if stats_json {
        print!("{}", campion::core::stats_json(&report.bdd_stats));
    }
    if tracing {
        campion::trace::disable();
        let trace = campion::trace::drain();
        if let Some(p) = &trace_path {
            if let Err(e) = std::fs::write(p, trace.chrome_json()) {
                eprintln!("error: {p}: {e}");
                return ExitCode::from(2);
            }
        }
        if show_metrics {
            eprint!("{}", trace.render_table());
        }
    }
    if report.is_equivalent() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_translate(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    match load_file(path).and_then(|r| to_junos(&r).map_err(|e| e.to_string())) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_baseline(args: &[String]) -> ExitCode {
    let [p1, p2] = args else { return usage() };
    let (r1, r2) = match (load_file(p1), load_file(p2)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut found = false;
    // Compare same-named policies the way the §2 experiment does.
    for (name, pol1) in &r1.policies {
        if let Some(pol2) = r2.policies.get(name) {
            if let Some(cex) = campion::minesweeper::check_route_maps(pol1, pol2) {
                println!("policy {name}:\n{cex}\n");
                found = true;
            }
        }
    }
    if let Some(cex) = campion::minesweeper::check_static_routes(&r1, &r2) {
        println!("static routes:\n{cex}\n");
        found = true;
    }
    for (name, a1) in &r1.acls {
        if let Some(a2) = r2.acls.get(name) {
            if let Some(cex) = campion::minesweeper::check_acls(a1, a2) {
                println!("ACL {name}:\n{cex}\n");
                found = true;
            }
        }
    }
    if found {
        ExitCode::FAILURE
    } else {
        println!("no differences found");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "compare" => cmd_compare(rest),
            "translate" => cmd_translate(rest),
            "baseline" => cmd_baseline(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
