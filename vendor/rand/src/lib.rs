//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the minimal deterministic-PRNG surface Campion's generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is a
//! splitmix64-seeded xoshiro256** — statistically strong, and (crucially
//! for EXPERIMENTS.md) deterministic in the seed, like the upstream
//! `StdRng` contract Campion relies on.
//!
//! Not a drop-in replacement: distributions, fill, thread_rng, and the
//! trait zoo are intentionally absent, and the stream of any given seed
//! differs from upstream `rand`. Everything in-repo that consumes seeds
//! treats them as opaque, so only cross-version reproducibility changes.

#![warn(missing_docs)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a PRNG from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, bound)` via Lemire-style rejection (debiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample any [`Standard`] type uniformly over its bit patterns.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (the standard-quality PRNG
    /// this shim offers in place of upstream's ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// **The seedable entry point for reproducible fan-out.** Build the
        /// generator for logical stream `stream` of run seed `seed`.
        ///
        /// Derivation is a pure function of `(seed, stream)` — two splitmix64
        /// steps fold the pair into one 64-bit seed, which then goes through
        /// [`SeedableRng::seed_from_u64`] — so every stream is byte-identical
        /// across machines, platforms, and thread schedules. Parallel drivers
        /// (the `campion-fuzz` work-stealing pool) MUST derive each work
        /// item's RNG this way rather than sharing one generator, otherwise
        /// the claim order would leak into the random stream and runs would
        /// stop being reproducible from the seed alone.
        ///
        /// `for_stream(seed, 0)` is *not* the same stream as
        /// `seed_from_u64(seed)`; the two namespaces are disjoint by
        /// construction (the fold passes through splitmix64 twice).
        pub fn for_stream(seed: u64, stream: u64) -> Self {
            let mut sm = seed;
            let a = splitmix64(&mut sm);
            let mut sm2 = a ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
            Self::seed_from_u64(splitmix64(&mut sm2))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u8..=32);
            assert!(y <= 32);
            let z = rng.gen_range(5usize..6);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn for_stream_is_deterministic_and_disjoint() {
        let mut a = StdRng::for_stream(42, 7);
        let mut b = StdRng::for_stream(42, 7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // Different streams of the same seed, and the plain seed itself,
        // all start differently.
        let mut c = StdRng::for_stream(42, 8);
        let mut d = StdRng::seed_from_u64(42);
        let a0 = StdRng::for_stream(42, 7).gen::<u64>();
        assert_ne!(a0, c.gen::<u64>());
        assert_ne!(a0, d.gen::<u64>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
