//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with element strategy `element` and length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// A strategy for `BTreeSet<S::Value>`. The target size is drawn from the
/// range; duplicates generated along the way may leave the set smaller,
/// matching upstream's best-effort contract.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.clone().generate(rng);
        let mut out = BTreeSet::new();
        // Bounded retries: a narrow element domain may not have `len`
        // distinct values at all.
        let mut attempts = 0usize;
        while out.len() < len && attempts < len * 8 + 8 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// `BTreeSet` strategy with element strategy `element` and size in `size`.
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}
