//! Configuration, RNG, and the case-execution loop behind `proptest!`.

use crate::strategy::Strategy;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for Config {
    /// 64 cases, overridable at runtime through the `PROPTEST_CASES`
    /// environment variable (matching upstream proptest's knob so CI can
    /// crank property suites without recompiling).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        Config { cases }
    }
}

impl Config {
    /// A config running `cases` cases and defaults elsewhere.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// A property-level failure raised by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given rendered message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic generator handed to strategies: splitmix64 over a
/// seed derived from the test's fully-qualified name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` (`bound = 0` means the full 2^64
    /// range). Debiased via 128-bit multiply-shift rejection.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// FNV-1a over the test name: the per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The exact RNG seed for case `case` of the test named `name`: the
/// **documented seedable entry point** for replaying one failing case by
/// hand (`TestRng::from_seed(case_seed(name, case))`). A pure function of
/// its inputs — byte-reproducible across machines. `PROPTEST_SEED=<u64>`
/// in the environment replaces the name-derived base seed, re-aiming every
/// property at a fresh deterministic stream without recompiling.
pub fn case_seed(name: &str, case: u32) -> u64 {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or_else(|| name_seed(name));
    base.wrapping_add(u64::from(case).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Run `config.cases` generated cases of the property `f` against
/// `strategy`, panicking (like a failed `assert!`) on the first failing
/// case. The panic message always carries the failing case's exact RNG
/// seed, so any failure is replayable on any machine via
/// [`case_seed`]/[`TestRng::from_seed`] regardless of how the base seed
/// was chosen.
pub fn run_cases<S, F>(config: &Config, name: &str, strategy: &S, mut f: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let seed = case_seed(name, case);
        let mut rng = TestRng::from_seed(seed);
        let value = strategy.generate(&mut rng);
        if let Err(e) = f(value) {
            panic!(
                "property `{name}` failed at case {case}/{} (rng seed {seed:#018x}): {e}",
                config.cases
            );
        }
    }
}

/// `proptest! { #[test] fn prop(x in strategy) { ... } }`
///
/// An optional leading `#![proptest_config(expr)]` overrides the default
/// [`Config`]. Bodies use `prop_assert!`-family macros (which return an
/// error rather than panicking, matching upstream's control flow).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_cases(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// `prop_compose! { fn arb()(x in s, ...) -> T { body } }` — a named
/// strategy constructor built from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)($($arg:pat_param in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property-level `assert!`: fails the current case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Property-level `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)+)
                )
            }
        }
    };
}

/// Property-level `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r)
            }
        }
    };
}
