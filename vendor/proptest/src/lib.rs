//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small property-testing engine exposing the subset of proptest's API that
//! Campion's test suites use: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, `any::<T>()`,
//! [`collection::vec`] / [`collection::btree_set`], [`sample::select`], and
//! the `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic seed and
//!   case index instead of a minimized input.
//! * **Deterministic generation.** Each test's value stream is a pure
//!   function of the fully-qualified test name and case index, so runs are
//!   reproducible without a persistence file.
//! * **String "regex" strategies** (`"\\PC*" `) generate arbitrary
//!   printable strings; the pattern itself is not interpreted. The only
//!   in-repo use is parser robustness fuzzing, where that is sufficient.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}
