//! The [`Strategy`] trait and the combinators Campion's tests use.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a deeper one. `depth` bounds nesting;
    /// `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility (generation is already size-bounded by `depth`).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level, bias toward recursion but keep leaves
            // reachable so expected size stays bounded.
            let deeper = recurse(strat).boxed();
            strat = Union::weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type behind a cheaply-clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Equal-weight union.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Union with explicit weights.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "empty union");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "zero-weight union");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// String-pattern strategy. Upstream interprets `&str` as a regex; this
/// shim generates arbitrary printable strings (with occasional newlines
/// and multi-byte characters) regardless of the pattern — enough for the
/// parser-robustness suites, the only in-repo consumer.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(120) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(20) {
                0 => '\n',
                1 => '\t',
                2..=3 => char::from_u32(0x00A1 + rng.next_u64() as u32 % 0x500).unwrap_or('¡'),
                _ => (0x20u8 + (rng.next_u64() % 0x5F) as u8) as char,
            };
            s.push(c);
        }
        s
    }
}
