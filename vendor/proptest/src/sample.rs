//! Sampling from fixed collections: `select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: 'static> {
    items: &'static [T],
}

impl<T: Clone + 'static> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// Uniform choice from a static slice (cloning the chosen element).
pub fn select<T: Clone + 'static>(items: &'static [T]) -> Select<T> {
    assert!(!items.is_empty(), "cannot select from an empty slice");
    Select { items }
}
