//! `any::<T>()` — the canonical full-range strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing uniformly arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
