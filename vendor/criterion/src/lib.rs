//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a small wall-clock harness with criterion's bench-definition API
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`). Each benchmark
//! runs a short warmup then `sample_size` timed samples and prints the
//! minimum / median / mean sample time. There is no statistical analysis,
//! HTML report, or baseline comparison.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_bench(id, 20, f);
    }
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Benchmark a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (printing is incremental; nothing further to do).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one sample of `f` (plus an untimed warmup run on first use).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.samples.is_empty() {
            // Warmup: populate caches and lazy statics outside the timing.
            black_box(f());
        }
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher::default();
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut samples = b.samples;
    if samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id}: min {:?}  median {:?}  mean {:?}  ({} samples)",
        min,
        median,
        mean,
        samples.len()
    );
}

/// Bind benchmark functions into a runnable group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
